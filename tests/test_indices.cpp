// Tests for IndexCreate (merHist / FASTQPart) and index serialization.
#include "core/index_create.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/indices.hpp"
#include "io/fastq.hpp"
#include "kmer/scanner.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"

namespace metaprep::core {
namespace {

using test::TempDir;

sim::DatasetConfig small_config(std::uint64_t pairs = 300) {
  sim::DatasetConfig cfg;
  cfg.name = "idx";
  cfg.genomes.num_species = 3;
  cfg.genomes.min_genome_len = 4000;
  cfg.genomes.max_genome_len = 6000;
  cfg.num_pairs = pairs;
  return cfg;
}

TEST(IndexCreate, BasicInvariants) {
  TempDir dir;
  const auto ds = sim::simulate_dataset(small_config(), dir.file("d"));
  IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 6;
  opt.target_chunks = 8;
  IndexCreateTiming timing;
  const auto index = create_index("idx", ds.files, true, opt, &timing);

  EXPECT_EQ(index.total_reads, 300u);
  EXPECT_EQ(index.total_bases, ds.total_bases);
  EXPECT_EQ(index.k, 15);
  EXPECT_EQ(index.mer_hist.m, 6);
  EXPECT_EQ(index.mer_hist.counts.size(), std::size_t{1} << 12);
  EXPECT_GE(timing.chunking_seconds, 0.0);
  EXPECT_GE(timing.histogram_seconds, 0.0);
  // Roughly the requested number of chunks (at least one per file).
  EXPECT_GE(index.part.num_chunks(), 2u);
  EXPECT_LE(index.part.num_chunks(), 16u);
}

TEST(IndexCreate, ChunksTileTheFilesExactly) {
  TempDir dir;
  const auto ds = sim::simulate_dataset(small_config(), dir.file("d"));
  IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 4;
  opt.target_chunks = 6;
  const auto index = create_index("idx", ds.files, true, opt);

  for (std::size_t f = 0; f < index.files.size(); ++f) {
    std::uint64_t covered = 0;
    std::uint64_t records = 0;
    std::uint64_t next_offset = 0;
    std::uint32_t next_read = 0;
    for (const auto& c : index.part.chunks) {
      if (c.file != f) continue;
      EXPECT_EQ(c.offset, next_offset) << "gap or overlap in chunks";
      next_offset = c.offset + c.size;
      covered += c.size;
      // First read IDs are contiguous within a file (paired: both files use
      // the same base).
      EXPECT_EQ(c.first_read_id, next_read);
      next_read = c.first_read_id + c.record_count;
      records += c.record_count;
    }
    EXPECT_EQ(covered, io::file_size_bytes(index.files[f]));
    EXPECT_EQ(records, index.total_reads);
  }
}

TEST(IndexCreate, ChunkBoundariesAreRecordAligned) {
  TempDir dir;
  const auto ds = sim::simulate_dataset(small_config(), dir.file("d"));
  IndexCreateOptions opt;
  opt.k = 11;
  opt.m = 4;
  opt.target_chunks = 10;
  const auto index = create_index("idx", ds.files, true, opt);
  for (const auto& c : index.part.chunks) {
    const auto buffer = io::read_file_range(index.files[c.file], c.offset, c.size);
    EXPECT_EQ(io::count_records_in_buffer(std::string_view(buffer.data(), buffer.size())),
              c.record_count);
  }
}

TEST(IndexCreate, MerHistIsColumnSumOfChunkHistograms) {
  TempDir dir;
  const auto ds = sim::simulate_dataset(small_config(), dir.file("d"));
  IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 5;
  opt.target_chunks = 7;
  const auto index = create_index("idx", ds.files, true, opt);
  const std::size_t nbins = index.mer_hist.counts.size();
  std::vector<std::uint64_t> colsum(nbins, 0);
  for (std::uint32_t c = 0; c < index.part.num_chunks(); ++c) {
    const std::uint32_t* row = index.part.row(c);
    for (std::size_t b = 0; b < nbins; ++b) colsum[b] += row[b];
  }
  for (std::size_t b = 0; b < nbins; ++b) {
    EXPECT_EQ(colsum[b], index.mer_hist.counts[b]) << "bin " << b;
  }
}

TEST(IndexCreate, HistogramTotalEqualsEnumeratedKmerCount) {
  TempDir dir;
  const auto ds = sim::simulate_dataset(small_config(200), dir.file("d"));
  IndexCreateOptions opt;
  opt.k = 21;
  opt.m = 6;
  const auto index = create_index("idx", ds.files, true, opt);

  std::uint64_t expected = 0;
  for (const auto& f : ds.files) {
    for (const auto& rec : test::read_all_fastq(f)) {
      expected += kmer::count_valid_kmers(rec.seq, 21);
    }
  }
  EXPECT_EQ(index.mer_hist.total(), expected);
}

TEST(IndexCreate, WideKUsesSameBinSemantics) {
  TempDir dir;
  const auto ds = sim::simulate_dataset(small_config(100), dir.file("d"));
  IndexCreateOptions opt;
  opt.k = 43;  // 128-bit path
  opt.m = 5;
  const auto index = create_index("idx", ds.files, true, opt);
  std::uint64_t expected = 0;
  for (const auto& f : ds.files) {
    for (const auto& rec : test::read_all_fastq(f)) {
      expected += kmer::count_valid_kmers(rec.seq, 43);
    }
  }
  EXPECT_EQ(index.mer_hist.total(), expected);
}

TEST(IndexCreate, PairedMismatchThrows) {
  TempDir dir;
  test::write_fastq(dir.file("a_1.fastq"), {"ACGTACGTAC", "TTTTTTTTTT"});
  test::write_fastq(dir.file("a_2.fastq"), {"ACGTACGTAC"});
  IndexCreateOptions opt;
  opt.k = 5;
  opt.m = 2;
  EXPECT_THROW(
      create_index("bad", {dir.file("a_1.fastq"), dir.file("a_2.fastq")}, true, opt),
      std::runtime_error);
}

TEST(IndexCreate, OddPairedFileCountThrows) {
  TempDir dir;
  test::write_fastq(dir.file("a.fastq"), {"ACGTACGTAC"});
  IndexCreateOptions opt;
  EXPECT_THROW(create_index("bad", {dir.file("a.fastq")}, true, opt), std::invalid_argument);
}

TEST(IndexCreate, SingleEndAccumulatesReadIds) {
  TempDir dir;
  test::write_fastq(dir.file("a.fastq"), {"ACGTACGTACGT", "GGGGGGGGGGGG"});
  test::write_fastq(dir.file("b.fastq"), {"TTTTTTTTTTTT"});
  IndexCreateOptions opt;
  opt.k = 5;
  opt.m = 2;
  opt.target_chunks = 2;
  const auto index =
      create_index("se", {dir.file("a.fastq"), dir.file("b.fastq")}, false, opt);
  EXPECT_EQ(index.total_reads, 3u);
  // File b's first chunk starts at read ID 2.
  bool found_b = false;
  for (const auto& c : index.part.chunks) {
    if (c.file == 1) {
      EXPECT_EQ(c.first_read_id, 2u);
      found_b = true;
    }
  }
  EXPECT_TRUE(found_b);
}

TEST(IndexCreate, InvalidOptionsThrow) {
  TempDir dir;
  test::write_fastq(dir.file("a.fastq"), {"ACGT"});
  IndexCreateOptions opt;
  opt.m = 0;
  EXPECT_THROW(create_index("x", {dir.file("a.fastq")}, false, opt), std::invalid_argument);
  opt.m = 6;
  opt.k = 5;  // k < m
  EXPECT_THROW(create_index("x", {dir.file("a.fastq")}, false, opt), std::invalid_argument);
  EXPECT_THROW(create_index("x", {}, false, IndexCreateOptions{}), std::invalid_argument);
}

TEST(IndexCreate, ParallelHistogramsMatchSequential) {
  TempDir dir;
  const auto ds = sim::simulate_dataset(small_config(250), dir.file("d"));
  IndexCreateOptions seq_opt;
  seq_opt.k = 17;
  seq_opt.m = 5;
  seq_opt.target_chunks = 9;
  seq_opt.threads = 1;
  const auto sequential = create_index("par", ds.files, true, seq_opt);
  for (int threads : {2, 4, 7}) {
    IndexCreateOptions par_opt = seq_opt;
    par_opt.threads = threads;
    const auto parallel = create_index("par", ds.files, true, par_opt);
    EXPECT_EQ(parallel.mer_hist.counts, sequential.mer_hist.counts) << threads;
    EXPECT_EQ(parallel.part.histograms, sequential.part.histograms) << threads;
    EXPECT_EQ(parallel.total_bases, sequential.total_bases) << threads;
    EXPECT_EQ(parallel.total_reads, sequential.total_reads) << threads;
  }
}

TEST(Index, SaveLoadRoundTrip) {
  TempDir dir;
  const auto ds = sim::simulate_dataset(small_config(150), dir.file("d"));
  IndexCreateOptions opt;
  opt.k = 17;
  opt.m = 5;
  opt.target_chunks = 5;
  const auto index = create_index("roundtrip", ds.files, true, opt);
  const std::string path = dir.file("index.bin");
  save_index(index, path);
  const auto loaded = load_index(path);

  EXPECT_EQ(loaded.name, index.name);
  EXPECT_EQ(loaded.files, index.files);
  EXPECT_EQ(loaded.paired, index.paired);
  EXPECT_EQ(loaded.k, index.k);
  EXPECT_EQ(loaded.total_reads, index.total_reads);
  EXPECT_EQ(loaded.total_bases, index.total_bases);
  EXPECT_EQ(loaded.mer_hist.counts, index.mer_hist.counts);
  EXPECT_EQ(loaded.part.histograms, index.part.histograms);
  ASSERT_EQ(loaded.part.chunks.size(), index.part.chunks.size());
  for (std::size_t i = 0; i < loaded.part.chunks.size(); ++i) {
    EXPECT_EQ(loaded.part.chunks[i].offset, index.part.chunks[i].offset);
    EXPECT_EQ(loaded.part.chunks[i].size, index.part.chunks[i].size);
    EXPECT_EQ(loaded.part.chunks[i].first_read_id, index.part.chunks[i].first_read_id);
  }
}

TEST(Index, RangeCountSumsBins) {
  FastqPartTable part;
  part.m = 2;  // 16 bins
  part.chunks.resize(1);
  part.histograms.assign(16, 1);
  part.histograms[3] = 5;
  EXPECT_EQ(part.range_count(0, 0, 16), 20u);
  EXPECT_EQ(part.range_count(0, 3, 4), 5u);
  EXPECT_EQ(part.range_count(0, 4, 4), 0u);
}

TEST(Index, MaxChunkBytes) {
  DatasetIndex idx;
  idx.part.chunks.push_back({0, 0, 100, 0, 1});
  idx.part.chunks.push_back({0, 100, 300, 1, 1});
  EXPECT_EQ(idx.max_chunk_bytes(), 300u);
}

}  // namespace
}  // namespace metaprep::core
