// Tests for the canonical k-mer scanners (scalar, 128-bit, 4-way vectorized).
#include "kmer/scanner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace metaprep::kmer {
namespace {

std::string random_dna(int len, util::Xoshiro256& rng, double n_rate = 0.0) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (auto& c : s) {
    c = rng.next_bool(n_rate) ? 'N' : base_char(static_cast<std::uint8_t>(rng.next_below(4)));
  }
  return s;
}

/// Brute-force reference: substring + string-level canonicalization.
std::vector<std::uint64_t> reference_kmers(const std::string& seq, int k) {
  std::vector<std::uint64_t> out;
  if (static_cast<int>(seq.size()) < k) return out;
  for (std::size_t i = 0; i + static_cast<std::size_t>(k) <= seq.size(); ++i) {
    const std::string sub = seq.substr(i, static_cast<std::size_t>(k));
    if (sub.find_first_not_of("ACGT") != std::string::npos) continue;
    out.push_back(canonical64(encode64(sub), k));
  }
  return out;
}

TEST(Scanner, EmptyAndShortSequences) {
  std::vector<std::uint64_t> out;
  scan_canonical_kmers64("", 5, out);
  EXPECT_TRUE(out.empty());
  scan_canonical_kmers64("ACGT", 5, out);
  EXPECT_TRUE(out.empty());
  scan_canonical_kmers64("ACGTA", 5, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Scanner, PositionsReported) {
  std::vector<std::size_t> positions;
  for_each_canonical_kmer64("ACGTACGT", 4, [&](std::uint64_t, std::size_t pos) {
    positions.push_back(pos);
  });
  EXPECT_EQ(positions, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Scanner, SkipsWindowsContainingN) {
  // "ACGTNACGT" with k=3: windows 0-1 valid, 2-4 contain N, 5-6 valid.
  std::vector<std::size_t> positions;
  for_each_canonical_kmer64("ACGTNACGT", 3, [&](std::uint64_t, std::size_t pos) {
    positions.push_back(pos);
  });
  EXPECT_EQ(positions, (std::vector<std::size_t>{0, 1, 5, 6}));
}

TEST(Scanner, AllNSequenceYieldsNothing) {
  std::vector<std::uint64_t> out;
  scan_canonical_kmers64(std::string(50, 'N'), 5, out);
  EXPECT_TRUE(out.empty());
}

TEST(Scanner, CountValidKmersMatchesEnumeration) {
  util::Xoshiro256 rng(42);
  for (int i = 0; i < 30; ++i) {
    const std::string seq = random_dna(80, rng, 0.05);
    for (int k : {3, 7, 15}) {
      std::vector<std::uint64_t> out;
      scan_canonical_kmers64(seq, k, out);
      EXPECT_EQ(count_valid_kmers(seq, k), out.size());
    }
  }
}

class ScannerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ScannerPropertyTest, ScalarMatchesBruteForce) {
  const int k = GetParam();
  util::Xoshiro256 rng(1200 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 25; ++i) {
    const std::string seq = random_dna(60 + static_cast<int>(rng.next_below(80)), rng, 0.03);
    std::vector<std::uint64_t> got;
    scan_canonical_kmers64(seq, k, got);
    EXPECT_EQ(got, reference_kmers(seq, k)) << "seq=" << seq;
  }
}

TEST_P(ScannerPropertyTest, VectorizedMatchesScalarAsMultiset) {
  const int k = GetParam();
  util::Xoshiro256 rng(1300 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 25; ++i) {
    // Mix of clean and N-containing reads, short and long.
    const double n_rate = i % 3 == 0 ? 0.02 : 0.0;
    const std::string seq = random_dna(30 + static_cast<int>(rng.next_below(200)), rng, n_rate);
    std::vector<std::uint64_t> scalar;
    std::vector<std::uint64_t> vectorized;
    scan_canonical_kmers64(seq, k, scalar);
    scan_canonical_kmers64_x4(seq, k, vectorized);
    std::sort(scalar.begin(), scalar.end());
    std::sort(vectorized.begin(), vectorized.end());
    EXPECT_EQ(vectorized, scalar) << "seq=" << seq;
  }
}

TEST_P(ScannerPropertyTest, Scanner128MatchesScanner64ForSmallK) {
  const int k = GetParam();
  util::Xoshiro256 rng(1400 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 15; ++i) {
    const std::string seq = random_dna(100, rng, 0.02);
    std::vector<std::uint64_t> v64;
    scan_canonical_kmers64(seq, k, v64);
    std::vector<Kmer128> v128;
    for_each_canonical_kmer128(seq, k, [&](Kmer128 km, std::size_t) { v128.push_back(km); });
    ASSERT_EQ(v64.size(), v128.size());
    for (std::size_t j = 0; j < v64.size(); ++j) {
      EXPECT_EQ(v128[j].hi, 0u);
      EXPECT_EQ(v128[j].lo, v64[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VariousK, ScannerPropertyTest,
                         ::testing::Values(3, 5, 11, 21, 27, 31, 32));

class Scanner128Test : public ::testing::TestWithParam<int> {};

TEST_P(Scanner128Test, MatchesBruteForceStringReference) {
  const int k = GetParam();
  util::Xoshiro256 rng(1500 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 15; ++i) {
    const std::string seq = random_dna(150, rng, 0.02);
    std::vector<std::string> got;
    for_each_canonical_kmer128(seq, k, [&](Kmer128 km, std::size_t) {
      got.push_back(decode128(km, k));
    });
    std::vector<std::string> expected;
    for (std::size_t p = 0; p + static_cast<std::size_t>(k) <= seq.size(); ++p) {
      const std::string sub = seq.substr(p, static_cast<std::size_t>(k));
      if (sub.find_first_not_of("ACGT") != std::string::npos) continue;
      std::string rc(sub.rbegin(), sub.rend());
      for (auto& c : rc) c = base_char(complement_code(base_code(c)));
      expected.push_back(std::min(sub, rc));
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(WideK, Scanner128Test, ::testing::Values(33, 41, 55, 63));

TEST(ScannerX4, ExactCountOnCleanRead) {
  util::Xoshiro256 rng(1600);
  const std::string seq = random_dna(500, rng, 0.0);
  std::vector<std::uint64_t> out;
  scan_canonical_kmers64_x4(seq, 27, out);
  EXPECT_EQ(out.size(), 500u - 27 + 1);
}

TEST(ScannerX4, ShortReadFallsBackCorrectly) {
  util::Xoshiro256 rng(1700);
  const std::string seq = random_dna(12, rng);
  std::vector<std::uint64_t> a, b;
  scan_canonical_kmers64(seq, 5, a);
  scan_canonical_kmers64_x4(seq, 5, b);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace metaprep::kmer
