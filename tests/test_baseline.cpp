// Tests for the comparison baselines (KMC2-like counter, AP_LB partitioner).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "baseline/ap_lb.hpp"
#include "baseline/howe_dbg.hpp"
#include "baseline/kmc_like.hpp"
#include "sim/genome.hpp"
#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "kmer/minimizer.hpp"
#include "kmer/scanner.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"

namespace metaprep::baseline {
namespace {

using test::TempDir;

std::vector<std::string> sample_reads(std::uint64_t seed, int count, int len) {
  sim::DatasetConfig cfg;
  cfg.genomes.num_species = 2;
  cfg.genomes.min_genome_len = 3000;
  cfg.genomes.max_genome_len = 4000;
  cfg.genomes.seed = seed;
  cfg.num_pairs = static_cast<std::uint64_t>(count);
  cfg.reads.read_len = static_cast<std::uint32_t>(len);
  cfg.reads.seed = seed + 1;
  const auto mem = sim::simulate_in_memory(cfg);
  std::vector<std::string> reads = mem.r1;
  reads.insert(reads.end(), mem.r2.begin(), mem.r2.end());
  return reads;
}

TEST(KmcLike, TotalsMatchDirectScanner) {
  const auto reads = sample_reads(9, 100, 90);
  KmcLikeOptions opt;
  opt.k = 21;
  opt.minimizer_len = 7;
  const auto result = kmc_like_count_reads(reads, opt);

  std::vector<std::uint64_t> all;
  for (const auto& r : reads) kmer::scan_canonical_kmers64(r, 21, all);
  std::sort(all.begin(), all.end());
  const auto distinct =
      static_cast<std::uint64_t>(std::unique(all.begin(), all.end()) - all.begin());

  EXPECT_EQ(result.total_kmers, all.size());
  EXPECT_EQ(result.distinct_kmers, distinct);
  EXPECT_GT(result.super_kmers, 0u);
}

TEST(KmcLike, DelegatesToSharedSuperKmerScanner) {
  // The baseline's binning and the pipeline's --comm-compress emit path
  // share one decomposition core (kmer/superkmer).  The baseline's run
  // census must therefore be reproducible, run for run, from the public
  // kmer::super_kmers adapter on the same corpus — if the two ever drift,
  // the KMC-2 comparison no longer measures the shipped code.
  const auto reads = sample_reads(21, 120, 95);
  KmcLikeOptions opt;
  opt.k = 25;
  opt.minimizer_len = 9;
  const auto result = kmc_like_count_reads(reads, opt);

  std::uint64_t runs = 0;
  std::uint64_t bases = 0;
  std::uint64_t kmers = 0;
  for (const auto& r : reads) {
    for (const auto& sk : kmer::super_kmers(r, opt.k, opt.minimizer_len)) {
      ++runs;
      bases += sk.kmer_count + static_cast<std::uint64_t>(opt.k) - 1;
      kmers += sk.kmer_count;
    }
  }
  EXPECT_EQ(result.super_kmers, runs);
  EXPECT_EQ(result.super_kmer_bases, bases);
  EXPECT_EQ(result.total_kmers, kmers);
}

TEST(KmcLike, SuperKmersCompress) {
  const auto reads = sample_reads(11, 80, 100);
  KmcLikeOptions opt;
  opt.k = 27;
  opt.minimizer_len = 9;
  const auto result = kmc_like_count_reads(reads, opt);
  // Stored super-k-mer bases must be far less than one copy of every k-mer.
  EXPECT_LT(result.super_kmer_bases,
            result.total_kmers * static_cast<std::uint64_t>(opt.k) / 2);
}

TEST(KmcLike, FileAndMemoryVariantsAgree) {
  TempDir dir;
  const auto reads = sample_reads(13, 50, 80);
  test::write_fastq(dir.file("r.fastq"), reads);
  KmcLikeOptions opt;
  opt.k = 15;
  opt.minimizer_len = 5;
  const auto from_file = kmc_like_count({dir.file("r.fastq")}, opt);
  const auto from_mem = kmc_like_count_reads(reads, opt);
  EXPECT_EQ(from_file.total_kmers, from_mem.total_kmers);
  EXPECT_EQ(from_file.distinct_kmers, from_mem.distinct_kmers);
  EXPECT_EQ(from_file.super_kmers, from_mem.super_kmers);
}

TEST(KmcLike, InvalidMinimizerLengthThrows) {
  KmcLikeOptions opt;
  opt.k = 5;
  opt.minimizer_len = 7;
  EXPECT_THROW(kmc_like_count_reads({}, opt), std::invalid_argument);
}

TEST(ApLb, PartitionMatchesMetaprep) {
  TempDir dir;
  sim::DatasetConfig cfg;
  cfg.name = "aplb";
  cfg.genomes.num_species = 4;
  cfg.genomes.min_genome_len = 3000;
  cfg.genomes.max_genome_len = 5000;
  cfg.num_pairs = 200;
  const auto ds = sim::simulate_dataset(cfg, dir.file("aplb"));
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 5;
  opt.target_chunks = 6;
  const auto index = core::create_index("aplb", ds.files, true, opt);

  const auto ap = ap_lb_partition(index);
  EXPECT_GE(ap.sv_iterations, 1);
  EXPECT_GT(ap.num_edges, 0u);

  core::MetaprepConfig mp;
  mp.k = 15;
  mp.write_output = false;
  const auto metaprep = core::run_metaprep(index, mp);
  EXPECT_EQ(test::normalize_partition(ap.labels), test::normalize_partition(metaprep.labels));
}

TEST(ApLb, IterationCountGrowsWithGraphDiameter) {
  // A long chain of reads (each overlapping only the next) needs more SV
  // iterations than a highly-overlapping pile (Table 4's structural point).
  TempDir dir;
  const auto genome = sim::random_genome(4000, 123);
  std::vector<std::string> chain_reads;
  for (std::size_t pos = 0; pos + 40 <= genome.size(); pos += 25) {
    chain_reads.push_back(genome.substr(pos, 40));  // 15bp overlap with next
  }
  test::write_fastq(dir.file("chain.fastq"), chain_reads);
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 4;
  const auto chain_index = core::create_index("chain", {dir.file("chain.fastq")}, false, opt);
  const auto chain = ap_lb_partition(chain_index);

  // Low-diameter contrast: disjoint *pairs* of overlapping reads, drawn
  // from genome regions far enough apart that pairs share no k-mer with
  // each other (component diameter 1).
  std::vector<std::string> pair_reads;
  for (std::size_t pos = 0; pos + 55 <= genome.size(); pos += 200) {
    pair_reads.push_back(genome.substr(pos, 40));
    pair_reads.push_back(genome.substr(pos + 15, 40));  // 25bp overlap
  }
  test::write_fastq(dir.file("pairs.fastq"), pair_reads);
  const auto pairs_index = core::create_index("pairs", {dir.file("pairs.fastq")}, false, opt);
  const auto pairs = ap_lb_partition(pairs_index);

  EXPECT_GT(chain.sv_iterations, pairs.sv_iterations);
}

TEST(HoweDbg, ReadKmersStayInOneWcc) {
  const auto reads = sample_reads(21, 60, 80);
  const auto result = howe_dbg_wcc(reads, 15);
  EXPECT_GT(result.num_kmers, 0u);
  EXPECT_GT(result.num_wcc, 0u);
  // Every k-mer of a read maps to that read's WCC label.
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const std::uint32_t label = result.read_wcc[i];
    kmer::for_each_canonical_kmer64(reads[i], 15, [&](std::uint64_t km, std::size_t) {
      EXPECT_EQ(result.kmer_wcc.at(km), label) << "read " << i;
    });
  }
}

TEST(HoweDbg, EquivalenceTheoremWithReadGraphCC) {
  // The paper's §2 claim (after Flick et al.): the WCC decomposition of the
  // de Bruijn graph induces exactly the CC decomposition of the read graph.
  TempDir dir;
  sim::DatasetConfig cfg;
  cfg.name = "thm";
  cfg.genomes.num_species = 5;
  cfg.genomes.min_genome_len = 3000;
  cfg.genomes.max_genome_len = 5000;
  cfg.num_pairs = 250;
  const auto ds = sim::simulate_dataset(cfg, dir.file("thm"));
  core::IndexCreateOptions opt;
  opt.k = 17;
  opt.m = 5;
  opt.target_chunks = 7;
  const auto index = core::create_index("thm", ds.files, true, opt);

  core::MetaprepConfig mp;
  mp.k = 17;
  mp.num_ranks = 2;
  mp.threads_per_rank = 2;
  mp.write_output = false;
  const auto read_cc = core::run_metaprep(index, mp);

  const auto dbg = howe_dbg_wcc(index);
  ASSERT_EQ(dbg.read_wcc.size(), read_cc.labels.size());
  // Reads with no valid k-mers are singletons in both views; give each a
  // unique pseudo-label for the comparison.
  std::vector<std::uint32_t> wcc_labels = dbg.read_wcc;
  std::uint32_t next = static_cast<std::uint32_t>(dbg.num_wcc);
  for (auto& l : wcc_labels) {
    if (l == 0xFFFFFFFFu) l = next++;
  }
  EXPECT_EQ(test::normalize_partition(read_cc.labels), test::normalize_partition(wcc_labels));
}

TEST(HoweDbg, DisjointGenomesYieldDisjointWccs) {
  const auto g1 = sim::random_genome(2000, 71);
  const auto g2 = sim::random_genome(2000, 72);
  std::vector<std::string> reads;
  for (std::size_t pos = 0; pos + 80 <= g1.size(); pos += 40) reads.push_back(g1.substr(pos, 80));
  const std::size_t first_g2 = reads.size();
  for (std::size_t pos = 0; pos + 80 <= g2.size(); pos += 40) reads.push_back(g2.substr(pos, 80));
  const auto result = howe_dbg_wcc(reads, 21);
  EXPECT_EQ(result.num_wcc, 2u);
  for (std::size_t i = 1; i < reads.size(); ++i) {
    if (i < first_g2) {
      EXPECT_EQ(result.read_wcc[i], result.read_wcc[0]);
    } else {
      EXPECT_NE(result.read_wcc[i], result.read_wcc[0]);
    }
  }
}

TEST(HoweDbg, KmerTableBytesTracksDistinctKmers) {
  const auto reads = sample_reads(23, 40, 60);
  const auto result = howe_dbg_wcc(reads, 15);
  EXPECT_EQ(result.kmer_table_bytes, result.num_kmers * 12);
}

TEST(HoweDbg, WideKRejected) {
  EXPECT_THROW(howe_dbg_wcc(std::vector<std::string>{}, 45), std::invalid_argument);
}

TEST(ApLb, WideKRejected) {
  core::DatasetIndex index;
  index.k = 45;
  EXPECT_THROW(ap_lb_partition(index), std::invalid_argument);
}

TEST(ApLb, TimingFieldsPopulated) {
  TempDir dir;
  sim::DatasetConfig cfg;
  cfg.genomes.num_species = 2;
  cfg.genomes.min_genome_len = 2000;
  cfg.genomes.max_genome_len = 3000;
  cfg.num_pairs = 80;
  const auto ds = sim::simulate_dataset(cfg, dir.file("t"));
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 4;
  const auto index = core::create_index("t", ds.files, true, opt);
  const auto ap = ap_lb_partition(index);
  EXPECT_GE(ap.enumerate_seconds, 0.0);
  EXPECT_GE(ap.total_seconds(),
            ap.enumerate_seconds + ap.sort_seconds + ap.edges_seconds + ap.cc_seconds - 1e-9);
}

}  // namespace
}  // namespace metaprep::baseline
