// Tests for the pass/rank/thread k-mer range planner and chunk assignment.
#include "core/plan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace metaprep::core {
namespace {

MerHist uniform_hist(std::uint32_t bins, std::uint32_t per_bin) {
  MerHist h;
  h.m = 4;
  h.counts.assign(bins, per_bin);
  return h;
}

MerHist random_hist(std::uint32_t bins, std::uint64_t seed) {
  MerHist h;
  h.m = 4;
  h.counts.resize(bins);
  util::Xoshiro256 rng(seed);
  for (auto& c : h.counts) c = static_cast<std::uint32_t>(rng.next_below(1000));
  return h;
}

TEST(SplitBins, CoversRangeMonotonically) {
  const std::vector<std::uint32_t> w{5, 1, 9, 0, 0, 7, 3, 2};
  const auto b = split_bins_weighted(w, 0, 8, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 8u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GE(b[i], b[i - 1]);
}

TEST(SplitBins, BalancesWeights) {
  // 256 uniform bins over 8 parts: each part gets exactly 32 bins.
  const std::vector<std::uint32_t> w(256, 10);
  const auto b = split_bins_weighted(w, 0, 256, 8);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_EQ(b[i] - b[i - 1], 32u);
}

TEST(SplitBins, HeavyBinGoesToOnePart) {
  std::vector<std::uint32_t> w(10, 0);
  w[4] = 1000;
  const auto b = split_bins_weighted(w, 0, 10, 4);
  // All weight is in bin 4; some single part must contain it.
  int owner = -1;
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    if (b[i] <= 4 && 4 < b[i + 1]) owner = static_cast<int>(i);
  }
  EXPECT_NE(owner, -1);
}

TEST(SplitBins, SubrangeRespected) {
  const std::vector<std::uint32_t> w(20, 1);
  const auto b = split_bins_weighted(w, 5, 15, 2);
  EXPECT_EQ(b.front(), 5u);
  EXPECT_EQ(b.back(), 15u);
  EXPECT_EQ(b[1], 10u);
}

TEST(SplitBins, InvalidArgumentsThrow) {
  const std::vector<std::uint32_t> w(4, 1);
  EXPECT_THROW(split_bins_weighted(w, 0, 4, 0), std::invalid_argument);
  EXPECT_THROW(split_bins_weighted(w, 3, 2, 1), std::invalid_argument);
  EXPECT_THROW(split_bins_weighted(w, 0, 5, 1), std::invalid_argument);
}

struct PlanParams {
  int S, P, T;
};

class PassPlanTest : public ::testing::TestWithParam<PlanParams> {};

TEST_P(PassPlanTest, HierarchicalRangesTileExactly) {
  const auto [S, P, T] = GetParam();
  const auto hist = random_hist(256, 42);
  const PassPlan plan(hist, S, P, T);

  // Passes tile [0, bins).
  std::uint32_t cursor = 0;
  for (int s = 0; s < S; ++s) {
    const auto pr = plan.pass_range(s);
    EXPECT_EQ(pr.begin, cursor);
    cursor = pr.end;
    // Ranks tile the pass.
    std::uint32_t rcur = pr.begin;
    for (int p = 0; p < P; ++p) {
      const auto rr = plan.rank_range(s, p);
      EXPECT_EQ(rr.begin, rcur);
      rcur = rr.end;
      // Threads tile the rank.
      std::uint32_t tcur = rr.begin;
      for (int t = 0; t < T; ++t) {
        const auto tr = plan.thread_range(s, p, t);
        EXPECT_EQ(tr.begin, tcur);
        tcur = tr.end;
      }
      EXPECT_EQ(tcur, rr.end);
    }
    EXPECT_EQ(rcur, pr.end);
  }
  EXPECT_EQ(cursor, 256u);
}

TEST_P(PassPlanTest, OwnerRankConsistentWithRanges) {
  const auto [S, P, T] = GetParam();
  const auto hist = random_hist(256, 123);
  const PassPlan plan(hist, S, P, T);
  for (int s = 0; s < S; ++s) {
    const auto pr = plan.pass_range(s);
    for (std::uint32_t bin = pr.begin; bin < pr.end; ++bin) {
      const int owner = plan.owner_rank(s, bin);
      EXPECT_TRUE(plan.rank_range(s, owner).contains(bin)) << "bin " << bin;
    }
  }
}

TEST_P(PassPlanTest, LoadRoughlyBalancedOnUniformHistogram) {
  const auto [S, P, T] = GetParam();
  const auto hist = uniform_hist(1024, 100);
  const PassPlan plan(hist, S, P, T);
  const std::uint64_t total = hist.total();
  const std::uint64_t per_pass = total / static_cast<std::uint64_t>(S);
  for (int s = 0; s < S; ++s) {
    const auto w = plan.range_tuples(hist, plan.pass_range(s));
    EXPECT_NEAR(static_cast<double>(w), static_cast<double>(per_pass),
                static_cast<double>(per_pass) * 0.1 + 200.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PassPlanTest,
                         ::testing::Values(PlanParams{1, 1, 1}, PlanParams{1, 4, 2},
                                           PlanParams{2, 2, 3}, PlanParams{4, 4, 4},
                                           PlanParams{8, 3, 2}, PlanParams{3, 16, 1}));

TEST(PassPlan, RejectsInvalid) {
  const auto hist = uniform_hist(16, 1);
  EXPECT_THROW(PassPlan(hist, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(PassPlan(hist, 1, 0, 1), std::invalid_argument);
}

TEST(ChunkAssignment, PartitionsChunksContiguously) {
  const ChunkAssignment ca(10, 3, 2);
  std::uint32_t cursor = 0;
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(ca.rank_begin(p), cursor);
    std::uint32_t tcur = ca.rank_begin(p);
    for (int t = 0; t < 2; ++t) {
      EXPECT_EQ(ca.thread_begin(p, t), tcur);
      tcur = ca.thread_end(p, t);
    }
    EXPECT_EQ(tcur, ca.rank_end(p));
    cursor = ca.rank_end(p);
  }
  EXPECT_EQ(cursor, 10u);
}

TEST(ChunkAssignment, FewerChunksThanWorkers) {
  const ChunkAssignment ca(2, 4, 4);
  std::uint32_t total = 0;
  for (int p = 0; p < 4; ++p) {
    for (int t = 0; t < 4; ++t) total += ca.thread_end(p, t) - ca.thread_begin(p, t);
  }
  EXPECT_EQ(total, 2u);
}

}  // namespace
}  // namespace metaprep::core
