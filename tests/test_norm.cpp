// Tests for the count-min sketch and digital normalization.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "norm/count_min.hpp"
#include "norm/diginorm.hpp"
#include "norm/trim.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace metaprep::norm {
namespace {

TEST(CountMin, NeverUndercounts) {
  CountMinSketch sketch(1 << 10, 3);
  util::Xoshiro256 rng(1);
  std::map<std::uint64_t, std::uint32_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.next_below(800);  // heavy collisions
    sketch.add(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.estimate(key), count) << "key " << key;
  }
}

TEST(CountMin, ExactWhenSparse) {
  // Far fewer keys than slots: conservative update should be near-exact.
  CountMinSketch sketch(1 << 16, 4);
  util::SplitMix64 sm(7);
  std::vector<std::uint64_t> keys(100);
  for (auto& k : keys) k = sm.next();
  for (int rep = 0; rep < 5; ++rep) {
    for (auto k : keys) sketch.add(k);
  }
  for (auto k : keys) EXPECT_EQ(sketch.estimate(k), 5u);
}

TEST(CountMin, UnseenKeysUsuallyZeroWhenSparse) {
  CountMinSketch sketch(1 << 16, 4);
  util::SplitMix64 sm(9);
  for (int i = 0; i < 50; ++i) sketch.add(sm.next());
  int nonzero = 0;
  for (int i = 0; i < 100; ++i) {
    if (sketch.estimate(sm.next() ^ 0xABCDEF) > 0) ++nonzero;
  }
  EXPECT_LE(nonzero, 2);
}

TEST(CountMin, AddReturnsUpdatedEstimate) {
  CountMinSketch sketch(1 << 12, 4);
  EXPECT_EQ(sketch.add(42), 1u);
  EXPECT_EQ(sketch.add(42), 2u);
  EXPECT_EQ(sketch.add(42), 3u);
}

TEST(CountMin, WidthRoundedToPowerOfTwo) {
  CountMinSketch sketch(1000, 2);
  EXPECT_EQ(sketch.width(), 1024u);
  EXPECT_EQ(sketch.depth(), 2);
  EXPECT_EQ(sketch.memory_bytes(), 2u * 1024 * 4);
}

TEST(CountMin, InvalidArgsThrow) {
  EXPECT_THROW(CountMinSketch(1, 1), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(16, 0), std::invalid_argument);
}

TEST(Diginorm, KeepsFirstCopiesDropsRedundant) {
  DiginormOptions opt;
  opt.k = 15;
  opt.cutoff = 3;
  Normalizer norm(opt);
  const auto genome = sim::random_genome(500, 11);
  const std::string read = genome.substr(100, 100);
  // The same read offered repeatedly: the first `cutoff` copies are kept.
  int kept = 0;
  for (int i = 0; i < 10; ++i) kept += norm.offer(read) ? 1 : 0;
  EXPECT_EQ(kept, 3);
  EXPECT_EQ(norm.stats().pairs_in, 10u);
  EXPECT_EQ(norm.stats().pairs_kept, 3u);
}

TEST(Diginorm, NovelReadsAlwaysKept) {
  DiginormOptions opt;
  opt.k = 15;
  opt.cutoff = 2;
  Normalizer norm(opt);
  const auto genome = sim::random_genome(20'000, 13);
  // Non-overlapping reads: every one is novel.
  for (std::size_t pos = 0; pos + 100 <= genome.size(); pos += 150) {
    EXPECT_TRUE(norm.offer(genome.substr(pos, 100)));
  }
}

TEST(Diginorm, PairKeptIfEitherMateNovel) {
  DiginormOptions opt;
  opt.k = 15;
  opt.cutoff = 2;
  Normalizer norm(opt);
  const auto genome = sim::random_genome(5000, 17);
  const std::string seen = genome.substr(0, 100);
  // Saturate `seen`.
  for (int i = 0; i < 4; ++i) norm.offer(seen);
  // Pair of (saturated, novel): kept.
  EXPECT_TRUE(norm.offer_pair(seen, genome.substr(2000, 100)));
  // Pair of (saturated, saturated): dropped.
  EXPECT_FALSE(norm.offer_pair(seen, seen));
}

TEST(Diginorm, ReducesDeepCoverageToCutoffScale) {
  // 60x coverage of one genome normalized with C=10 should keep roughly
  // 10/60 of the reads (within generous bounds — sketch noise, read ends).
  DiginormOptions opt;
  opt.k = 17;
  opt.cutoff = 10;
  Normalizer norm(opt);
  const auto genome = sim::random_genome(3000, 23);
  util::Xoshiro256 rng(29);
  const int total = 3000 * 60 / 100;  // 60x with 100 bp reads
  int kept = 0;
  for (int i = 0; i < total; ++i) {
    const std::uint64_t pos = rng.next_below(genome.size() - 100);
    kept += norm.offer(genome.substr(pos, 100)) ? 1 : 0;
  }
  const double keep = static_cast<double>(kept) / total;
  EXPECT_LT(keep, 0.45);
  EXPECT_GT(keep, 0.10);
}

TEST(Diginorm, FastqPairNormalizationRoundTrip) {
  test::TempDir dir;
  sim::DatasetConfig cfg;
  cfg.name = "dn";
  cfg.genomes.num_species = 2;
  cfg.genomes.min_genome_len = 3000;
  cfg.genomes.max_genome_len = 4000;
  cfg.num_pairs = 2000;  // deep coverage
  const auto ds = sim::simulate_dataset(cfg, dir.file("dn"));

  DiginormOptions opt;
  opt.k = 17;
  opt.cutoff = 8;
  const auto stats =
      normalize_fastq_pair(ds.files[0], ds.files[1], dir.file("norm"), opt);
  EXPECT_EQ(stats.pairs_in, 2000u);
  EXPECT_LT(stats.pairs_kept, stats.pairs_in);
  EXPECT_GT(stats.pairs_kept, 0u);

  const auto kept1 = test::read_all_fastq(dir.file("norm") + "_1.fastq");
  const auto kept2 = test::read_all_fastq(dir.file("norm") + "_2.fastq");
  EXPECT_EQ(kept1.size(), stats.pairs_kept);
  EXPECT_EQ(kept2.size(), stats.pairs_kept);
  // Mates stay paired.
  for (std::size_t i = 0; i < kept1.size(); ++i) {
    EXPECT_EQ(kept1[i].id.substr(0, kept1[i].id.size() - 2),
              kept2[i].id.substr(0, kept2[i].id.size() - 2));
  }
}

TEST(Trim, TrimmedLengthCutsTrailingLowQuality) {
  TrimOptions opt;
  opt.min_phred = 20;  // '5' = Q20 at offset 33
  // Qualities: I (Q40) x4 then # (Q2) x3 -> trim to 4.
  EXPECT_EQ(trimmed_length("ACGTACG", "IIII###", opt), 4u);
  EXPECT_EQ(trimmed_length("ACGT", "IIII", opt), 4u);
  EXPECT_EQ(trimmed_length("ACGT", "####", opt), 0u);
  // Low quality in the middle is kept (3' trim only).
  EXPECT_EQ(trimmed_length("ACGTA", "II#II", opt), 5u);
}

TEST(Trim, MismatchedLengthsThrow) {
  EXPECT_THROW(trimmed_length("ACGT", "II", TrimOptions{}), std::invalid_argument);
}

TEST(Trim, PairDroppedWhenEitherMateTooShort) {
  test::TempDir dir;
  {
    io::FastqWriter w1(dir.file("r1.fastq"));
    io::FastqWriter w2(dir.file("r2.fastq"));
    // Pair 0: both mates fine.  Pair 1: mate 2 collapses below min_length.
    w1.write("p0/1", "ACGTACGTAC", "IIIIIIIIII");
    w2.write("p0/2", "ACGTACGTAC", "IIIIIIIIII");
    w1.write("p1/1", "ACGTACGTAC", "IIIIIIIIII");
    w2.write("p1/2", "ACGTACGTAC", "II########");
  }
  TrimOptions opt;
  opt.min_phred = 20;
  opt.min_length = 5;
  const auto stats =
      norm::trim_fastq_pair(dir.file("r1.fastq"), dir.file("r2.fastq"), dir.file("t"), opt);
  EXPECT_EQ(stats.pairs_in, 2u);
  EXPECT_EQ(stats.pairs_kept, 1u);
  EXPECT_EQ(stats.bases_kept, 20u);
  const auto kept1 = test::read_all_fastq(dir.file("t") + "_1.fastq");
  const auto kept2 = test::read_all_fastq(dir.file("t") + "_2.fastq");
  ASSERT_EQ(kept1.size(), 1u);
  ASSERT_EQ(kept2.size(), 1u);
  EXPECT_EQ(kept1[0].id, "p0/1");
}

TEST(Trim, TrimmedRecordsKeepQualityAlignment) {
  test::TempDir dir;
  {
    io::FastqWriter w1(dir.file("r1.fastq"));
    io::FastqWriter w2(dir.file("r2.fastq"));
    w1.write("p/1", "ACGTACGTAC", "IIIIIIII##");  // trims to 8
    w2.write("p/2", "ACGTACGTAC", "IIIIIIIIII");
  }
  TrimOptions opt;
  opt.min_length = 4;
  norm::trim_fastq_pair(dir.file("r1.fastq"), dir.file("r2.fastq"), dir.file("t"), opt);
  const auto kept = test::read_all_fastq(dir.file("t") + "_1.fastq");
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].seq, "ACGTACGT");
  EXPECT_EQ(kept[0].qual, "IIIIIIII");
}

TEST(Diginorm, MismatchedPairFilesThrow) {
  test::TempDir dir;
  test::write_fastq(dir.file("a.fastq"), {"ACGTACGTACGTACGTACGT", "ACGTACGTACGTACGTACGT"});
  test::write_fastq(dir.file("b.fastq"), {"ACGTACGTACGTACGTACGT"});
  DiginormOptions opt;
  opt.k = 9;
  EXPECT_THROW(normalize_fastq_pair(dir.file("a.fastq"), dir.file("b.fastq"),
                                    dir.file("out"), opt),
               std::runtime_error);
}

}  // namespace
}  // namespace metaprep::norm
