// Property suite for the shared super-k-mer core (kmer/superkmer): the
// decomposition scanner, the minimizer-routing hash, and the wire records
// the compressed exchange ships.
//
// The central contract: encoding a read as super-k-mer records and
// re-expanding them on the receiver must reproduce *exactly* the
// (canonical k-mer, read ID) multiset the scalar per-k-mer scan would have
// produced — across N runs, lowercase bases, reads shorter than k, reads of
// exactly k bases, and homopolymers — and every k-mer inside a run must
// share the run's minimizer (that is what makes minimizer routing sound).
#include "kmer/superkmer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "kmer/codec.hpp"
#include "kmer/kmer128.hpp"
#include "kmer/minimizer.hpp"
#include "kmer/scanner.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace metaprep::kmer {
namespace {

/// Random read with occasional N runs and lowercase bases (the parsers and
/// scanners must treat 'a' == 'A'; the scanner must break runs at N).
std::string random_seq(util::Xoshiro256& rng, std::size_t len, double n_prob,
                       double lower_prob) {
  std::string s;
  s.reserve(len);
  while (s.size() < len) {
    if (n_prob > 0 && rng.next_bool(n_prob)) {
      const std::uint64_t run = 1 + rng.next_below(4);
      for (std::uint64_t i = 0; i < run && s.size() < len; ++i) s.push_back('N');
    } else {
      char c = "ACGT"[rng.next_below(4)];
      if (lower_prob > 0 && rng.next_bool(lower_prob)) c = static_cast<char>(c - 'A' + 'a');
      s.push_back(c);
    }
  }
  return s;
}

/// Corpus exercising every edge class: empty, shorter than k, exactly k,
/// homopolymers, all-N, N-broken, lowercase, and plain random reads.
std::vector<std::string> edge_corpus(int k, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::string> seqs;
  seqs.emplace_back();                                         // empty
  seqs.push_back(random_seq(rng, static_cast<std::size_t>(k) - 1, 0, 0));  // len < k
  seqs.push_back(random_seq(rng, static_cast<std::size_t>(k), 0, 0));      // len == k
  seqs.push_back(std::string(static_cast<std::size_t>(k) + 37, 'A'));      // homopolymer
  seqs.push_back(std::string(static_cast<std::size_t>(k) + 10, 'N'));      // all N
  for (int i = 0; i < 40; ++i) {
    const std::size_t len = rng.next_below(260);
    seqs.push_back(random_seq(rng, len, 0.02, 0.1));
  }
  return seqs;
}

/// Encode every run of @p seq as wire records with read ID @p value,
/// splitting at kMaxSuperKmerRun exactly like the pipeline's emit path.
void encode_seq(const std::string& seq, int k, int m, std::uint32_t value,
                SuperKmerScanner& sc, std::vector<std::byte>& out) {
  sc.scan(seq, k, m,
          [&](std::uint32_t start, std::uint32_t count, std::uint64_t /*mz*/) {
            std::uint32_t off = 0;
            while (off < count) {
              const std::uint32_t take = std::min(count - off, kMaxSuperKmerRun);
              append_superkmer_record(out, value, take, k, [&](std::size_t j) {
                return base_code(seq[start + off + j]);
              });
              off += take;
            }
          });
}

TEST(SuperKmerRoundTrip, ReproducesScalarKmerMultiset64) {
  for (const auto& [k, m] : {std::pair{15, 5}, std::pair{21, 9}, std::pair{31, 10}}) {
    const auto seqs = edge_corpus(k, 1000 + static_cast<std::uint64_t>(k));

    std::vector<std::pair<std::uint32_t, std::uint64_t>> expected;
    for (std::uint32_t id = 0; id < seqs.size(); ++id) {
      for_each_canonical_kmer64(seqs[id], k, [&](std::uint64_t km, std::size_t) {
        expected.emplace_back(id, km);
      });
    }

    SuperKmerScanner sc;
    std::vector<std::byte> stream;
    for (std::uint32_t id = 0; id < seqs.size(); ++id) encode_seq(seqs[id], k, m, id, sc, stream);

    const auto stats = count_superkmer_stream(stream.data(), stream.size(), k);
    EXPECT_EQ(stats.kmers, expected.size()) << "k=" << k;

    std::vector<std::pair<std::uint32_t, std::uint64_t>> got;
    SuperKmerReader reader(stream.data(), stream.size(), k);
    std::uint64_t records = 0;
    while (!reader.done()) {
      reader.next_header();
      ++records;
      reader.expand64([&](std::uint64_t km) { got.emplace_back(reader.value(), km); });
    }
    EXPECT_EQ(records, stats.records);

    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "k=" << k << " m=" << m;
  }
}

TEST(SuperKmerRoundTrip, ReproducesScalarKmerMultiset128) {
  constexpr int k = 33;
  constexpr int m = 11;
  const auto seqs = edge_corpus(k, 2033);

  std::vector<std::pair<std::uint32_t, Kmer128>> expected;
  for (std::uint32_t id = 0; id < seqs.size(); ++id) {
    for_each_canonical_kmer128(seqs[id], k, [&](Kmer128 km, std::size_t) {
      expected.emplace_back(id, km);
    });
  }

  SuperKmerScanner sc;
  std::vector<std::byte> stream;
  for (std::uint32_t id = 0; id < seqs.size(); ++id) encode_seq(seqs[id], k, m, id, sc, stream);

  std::vector<std::pair<std::uint32_t, Kmer128>> got;
  SuperKmerReader reader(stream.data(), stream.size(), k);
  while (!reader.done()) {
    reader.next_header();
    reader.expand128([&](Kmer128 km) { got.emplace_back(reader.value(), km); });
  }

  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(SuperKmerRoundTrip, SplitsRunsLongerThanMaxRun) {
  // A homopolymer has one minimizer everywhere, so the run exceeds the
  // uint16 n_kmers ceiling and the encoder must split it; the fragments
  // must still re-expand to every k-mer.
  constexpr int k = 15;
  constexpr int m = 5;
  const std::string seq(static_cast<std::size_t>(k) + kMaxSuperKmerRun + 99, 'G');
  const std::uint64_t nkmers = seq.size() - k + 1;

  SuperKmerScanner sc;
  std::vector<std::byte> stream;
  encode_seq(seq, k, m, 7, sc, stream);
  const auto stats = count_superkmer_stream(stream.data(), stream.size(), k);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.kmers, nkmers);

  std::uint64_t got = 0;
  std::vector<std::uint64_t> all;
  for_each_canonical_kmer64(seq, k, [&](std::uint64_t km, std::size_t) { all.push_back(km); });
  SuperKmerReader reader(stream.data(), stream.size(), k);
  std::vector<std::uint64_t> decoded;
  while (!reader.done()) {
    reader.next_header();
    EXPECT_EQ(reader.value(), 7u);
    got += reader.kmer_count();
    reader.expand64([&](std::uint64_t km) { decoded.push_back(km); });
  }
  EXPECT_EQ(got, nkmers);
  std::sort(all.begin(), all.end());
  std::sort(decoded.begin(), decoded.end());
  EXPECT_EQ(decoded, all);
}

TEST(SuperKmerScan, EveryKmerInRunSharesTheMinimizerAndRunsAreMaximal) {
  constexpr int k = 19;
  constexpr int m = 7;
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const auto seq = random_seq(rng, 60 + rng.next_below(200), 0.015, 0.05);
    SuperKmerScanner sc;
    std::vector<SuperKmer> runs;
    sc.scan(seq, k, m, [&](std::uint32_t start, std::uint32_t count, std::uint64_t mz) {
      runs.push_back({start, count, mz});
    });
    for (std::size_t r = 0; r < runs.size(); ++r) {
      for (std::uint32_t j = 0; j < runs[r].kmer_count; ++j) {
        std::uint64_t mz = 0;
        ASSERT_TRUE(window_minimizer(seq, runs[r].start + j, k, m, mz));
        EXPECT_EQ(mz, runs[r].minimizer) << "window " << runs[r].start + j;
      }
      // Maximality: a contiguous successor run must carry a different
      // minimizer, or the scanner should have extended this run.
      if (r + 1 < runs.size() &&
          runs[r + 1].start == runs[r].start + runs[r].kmer_count) {
        EXPECT_NE(runs[r + 1].minimizer, runs[r].minimizer);
      }
    }
  }
}

TEST(SuperKmerScan, AdapterAndScannerAgree) {
  // kmer::super_kmers (the KMC-2 baseline's entry point) is a thin adapter
  // over SuperKmerScanner; the two must never drift.
  constexpr int k = 17;
  constexpr int m = 6;
  util::Xoshiro256 rng(88);
  for (int trial = 0; trial < 20; ++trial) {
    const auto seq = random_seq(rng, rng.next_below(220), 0.02, 0.1);
    SuperKmerScanner sc;
    std::vector<SuperKmer> from_scanner;
    sc.scan(seq, k, m, [&](std::uint32_t start, std::uint32_t count, std::uint64_t mz) {
      from_scanner.push_back({start, count, mz});
    });
    const auto from_adapter = super_kmers(seq, k, m);
    ASSERT_EQ(from_adapter.size(), from_scanner.size());
    for (std::size_t i = 0; i < from_adapter.size(); ++i) {
      EXPECT_EQ(from_adapter[i].start, from_scanner[i].start);
      EXPECT_EQ(from_adapter[i].kmer_count, from_scanner[i].kmer_count);
      EXPECT_EQ(from_adapter[i].minimizer, from_scanner[i].minimizer);
    }
  }
}

TEST(SuperKmerScan, PackedScanMatchesTextScan) {
  // scan_packed over the PackedStore 2-bit layout must emit bit-identical
  // runs to scan() on the original text (including N resets via npos).
  constexpr int k = 15;
  constexpr int m = 5;
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const auto seq = random_seq(rng, rng.next_below(250), 0.03, 0.15);

    std::vector<std::uint64_t> words((seq.size() + 31) / 32, 0);
    std::vector<std::uint32_t> npos;
    for (std::uint32_t i = 0; i < seq.size(); ++i) {
      const std::uint8_t code = base_code(seq[i]);
      if (code > 3) {
        npos.push_back(i);  // packed as code 0, reset via the sidecar
      } else {
        words[i >> 5] |= static_cast<std::uint64_t>(code) << (2 * (i & 31u));
      }
    }

    SuperKmerScanner sc;
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> text_runs;
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> packed_runs;
    sc.scan(seq, k, m, [&](std::uint32_t s, std::uint32_t c, std::uint64_t mz) {
      text_runs.emplace_back(s, c, mz);
    });
    sc.scan_packed(words.data(), static_cast<std::uint32_t>(seq.size()), npos.data(),
                   static_cast<std::uint32_t>(npos.size()), k, m,
                   [&](std::uint32_t s, std::uint32_t c, std::uint64_t mz) {
                     packed_runs.emplace_back(s, c, mz);
                   });
    EXPECT_EQ(packed_runs, text_runs) << "trial " << trial;
  }
}

TEST(SuperKmerScan, EdgeCases) {
  constexpr int k = 15;
  constexpr int m = 5;
  SuperKmerScanner sc;
  auto runs_of = [&](const std::string& seq) {
    std::vector<SuperKmer> runs;
    sc.scan(seq, k, m, [&](std::uint32_t s, std::uint32_t c, std::uint64_t mz) {
      runs.push_back({s, c, mz});
    });
    return runs;
  };

  EXPECT_TRUE(runs_of("").empty());
  EXPECT_TRUE(runs_of("ACGTACGTACGTAC").empty());  // 14 bases < k
  EXPECT_TRUE(runs_of(std::string(40, 'N')).empty());

  // Exactly k bases: one run of one k-mer carrying the window's minimizer.
  const std::string exact = "ACGTACGTACGTACG";
  const auto one = runs_of(exact);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].start, 0u);
  EXPECT_EQ(one[0].kmer_count, 1u);
  std::uint64_t mz = 0;
  ASSERT_TRUE(window_minimizer(exact, 0, k, m, mz));
  EXPECT_EQ(one[0].minimizer, mz);

  // Homopolymer: a single maximal run covering every window; AAAAA is the
  // canonical minimum m-mer so the minimizer is 0.
  const std::string homo(static_cast<std::size_t>(k) + 9, 'A');
  const auto hr = runs_of(homo);
  ASSERT_EQ(hr.size(), 1u);
  EXPECT_EQ(hr[0].start, 0u);
  EXPECT_EQ(hr[0].kmer_count, homo.size() - k + 1);
  EXPECT_EQ(hr[0].minimizer, 0u);

  // An interior N voids every window that covers it.
  const std::string split = "ACGTACGTACGTACGT" + std::string("N") + "ACGTACGTACGTACGTA";
  std::uint64_t covered = 0;
  for (const auto& r : runs_of(split)) {
    covered += r.kmer_count;
    for (std::uint32_t j = 0; j < r.kmer_count; ++j) {
      const auto w = split.substr(r.start + j, k);
      EXPECT_EQ(w.find('N'), std::string::npos);
    }
  }
  std::uint64_t valid_windows = 0;
  for_each_canonical_kmer64(split, k, [&](std::uint64_t, std::size_t) { ++valid_windows; });
  EXPECT_EQ(covered, valid_windows);
}

TEST(SuperKmerWire, RecordByteLayout) {
  // value little-endian, n_kmers little-endian uint16, then 2-bit codes
  // LSB-first within each byte — the io::PackedStore word layout.
  constexpr int k = 5;
  const std::string bases = "ACGTACG";  // n=3 k-mers, 7 bases -> 2 packed bytes
  std::vector<std::byte> out;
  append_superkmer_record(out, 0xDEADBEEFu, 3, k,
                          [&](std::size_t j) { return base_code(bases[j]); });
  ASSERT_EQ(out.size(), superkmer_record_bytes(k, 3));
  ASSERT_EQ(out.size(), kSuperKmerHeaderBytes + 2);
  EXPECT_EQ(std::to_integer<unsigned>(out[0]), 0xEFu);
  EXPECT_EQ(std::to_integer<unsigned>(out[1]), 0xBEu);
  EXPECT_EQ(std::to_integer<unsigned>(out[2]), 0xADu);
  EXPECT_EQ(std::to_integer<unsigned>(out[3]), 0xDEu);
  EXPECT_EQ(std::to_integer<unsigned>(out[4]), 3u);
  EXPECT_EQ(std::to_integer<unsigned>(out[5]), 0u);
  // A=0 C=1 G=2 T=3: byte 0 holds ACGT -> 0b11'10'01'00, byte 1 holds ACG.
  EXPECT_EQ(std::to_integer<unsigned>(out[6]), 0xE4u);
  EXPECT_EQ(std::to_integer<unsigned>(out[7]), 0x24u);
}

TEST(SuperKmerWire, TruncatedStreamThrows) {
  constexpr int k = 15;
  const std::string seq = "ACGTACGTACGTACGTACGT";
  std::vector<std::byte> stream;
  SuperKmerScanner sc;
  encode_seq(seq, k, 5, 1, sc, stream);
  ASSERT_GT(stream.size(), kSuperKmerHeaderBytes);

  // Any strict prefix that cuts into a record must be rejected, both by the
  // sizing pass and by the streaming reader.
  for (const std::size_t cut : {stream.size() - 1, kSuperKmerHeaderBytes, std::size_t{3}}) {
    EXPECT_THROW(count_superkmer_stream(stream.data(), cut, k), util::Error) << cut;
    SuperKmerReader reader(stream.data(), cut, k);
    EXPECT_THROW(
        {
          while (!reader.done()) {
            reader.next_header();
            reader.expand64([](std::uint64_t) {});
          }
        },
        util::Error)
        << cut;
  }
}

TEST(SuperKmerRouting, MinimizerIsStrandSymmetricSoRoutingIsToo) {
  // A canonical k-mer's minimizer must not depend on which strand the read
  // presented: minimizer routing relies on all occurrences of a k-mer
  // meeting at one (rank, thread), including reverse-complement occurrences.
  constexpr int k = 21;
  constexpr int m = 7;
  util::Xoshiro256 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::string fwd = random_seq(rng, k, 0, 0);
    std::string rc(fwd.rbegin(), fwd.rend());
    for (auto& c : rc) c = base_char(complement_code(base_code(c)));
    std::uint64_t mf = 0;
    std::uint64_t mr = 0;
    ASSERT_TRUE(window_minimizer(fwd, 0, k, m, mf));
    ASSERT_TRUE(window_minimizer(rc, 0, k, m, mr));
    EXPECT_EQ(mf, mr) << fwd;
    EXPECT_LT(minimizer_bin(mf), kNumMinimizerBins);
  }
}

TEST(SuperKmerRouting, BinsSpreadAcrossTheSpace) {
  // mix64 must decouple the routing bin from the (lexicographically skewed)
  // minimizer value: random minimizers should occupy many distinct bins.
  util::Xoshiro256 rng(321);
  std::vector<bool> hit(kNumMinimizerBins, false);
  std::size_t distinct = 0;
  for (int i = 0; i < 8192; ++i) {
    const auto b = minimizer_bin(rng.next_below(1ULL << 14));  // small, skewed values
    ASSERT_LT(b, kNumMinimizerBins);
    if (!hit[b]) {
      hit[b] = true;
      ++distinct;
    }
  }
  // 8192 draws over 4096 bins: expect ~3540 distinct; anything above half
  // the space rules out the severe clustering raw minimizer values exhibit.
  EXPECT_GT(distinct, kNumMinimizerBins / 2);
}

}  // namespace
}  // namespace metaprep::kmer
