#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace metaprep::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference value for seed 0 from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowStaysInBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowZeroAndOneReturnZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowCoversSmallRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro256, GaussianMomentsApproximatelyStandard) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Xoshiro256, BoolProbabilityRoughlyHonored) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace metaprep::util
