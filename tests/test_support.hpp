// Shared helpers for the METAPREP test suite.
#pragma once

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "io/fastq.hpp"

namespace metaprep::test {

/// RAII temporary directory under the system temp root.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "metaprep_test") {
    const auto base = std::filesystem::temp_directory_path();
    for (int attempt = 0;; ++attempt) {
      path_ = base / (prefix + "_" + std::to_string(::getpid()) + "_" +
                      std::to_string(counter_++) + "_" + std::to_string(attempt));
      std::error_code ec;
      if (std::filesystem::create_directory(path_, ec)) break;
      if (attempt > 100) throw std::runtime_error("TempDir: cannot create");
    }
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
  static inline int counter_ = 0;
};

/// Write reads as a FASTQ file with constant qualities; returns the path.
inline std::string write_fastq(const std::string& path, const std::vector<std::string>& reads,
                               const std::string& id_prefix = "r") {
  io::FastqWriter w(path);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    w.write(id_prefix + std::to_string(i), reads[i], std::string(reads[i].size(), 'I'));
  }
  return path;
}

/// Normalize component labels so two labelings can be compared as
/// partitions: each element's label becomes the smallest element index in
/// its component.
inline std::vector<std::uint32_t> normalize_partition(const std::vector<std::uint32_t>& labels) {
  std::map<std::uint32_t, std::uint32_t> representative;
  for (std::uint32_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] = representative.try_emplace(labels[i], i);
    (void)it;
    (void)inserted;
  }
  std::vector<std::uint32_t> out(labels.size());
  for (std::uint32_t i = 0; i < labels.size(); ++i) out[i] = representative[labels[i]];
  return out;
}

/// All reads of a FASTQ file, in order.
inline std::vector<io::FastqRecord> read_all_fastq(const std::string& path) {
  std::vector<io::FastqRecord> out;
  io::FastqReader reader(path);
  io::FastqRecord rec;
  while (reader.next(rec)) out.push_back(rec);
  return out;
}

}  // namespace metaprep::test
