// Tests for the component binning subsystem (src/part).
#include "part/part.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace metaprep::part {
namespace {

std::vector<Component> make_components(std::initializer_list<std::uint64_t> weights) {
  std::vector<Component> out;
  std::uint32_t root = 0;
  for (std::uint64_t w : weights) {
    out.push_back(Component{root, w, w * 100});
    root += 7;  // arbitrary distinct roots
  }
  return out;
}

TEST(GreedyBinPack, SingleBinTakesEverything) {
  const auto comps = make_components({5, 3, 9, 1});
  const auto plan = greedy_bin_pack(comps, 1);
  EXPECT_EQ(plan.num_bins, 1);
  for (auto s : plan.slot_of) EXPECT_EQ(s, 0);
  EXPECT_EQ(plan.bin_reads[0], 18u);
  EXPECT_EQ(plan.bin_weight_bp[0], 1800u);
  EXPECT_EQ(plan.bin_components[0], 4u);
  EXPECT_DOUBLE_EQ(plan.skew(), 1.0);
}

TEST(GreedyBinPack, LargestFirstBalancesLoads) {
  // Weights 9,5,3,1: LPT puts 9 in bin 0, 5 in bin 1, 3 in bin 1 (lighter),
  // 1 in bin 1 (still lighter at 8 vs 9).
  const auto comps = make_components({5, 3, 9, 1});
  const auto plan = greedy_bin_pack(comps, 2);
  EXPECT_EQ(plan.bin_weight_bp[0], 900u);
  EXPECT_EQ(plan.bin_weight_bp[1], 900u);
  EXPECT_EQ(plan.bin_reads[0] + plan.bin_reads[1], 18u);
  EXPECT_DOUBLE_EQ(plan.skew(), 1.0);
}

TEST(GreedyBinPack, MoreBinsThanComponentsLeavesEmptyBins) {
  const auto comps = make_components({4, 2});
  const auto plan = greedy_bin_pack(comps, 5);
  std::uint64_t total = std::accumulate(plan.bin_weight_bp.begin(),
                                        plan.bin_weight_bp.end(), std::uint64_t{0});
  EXPECT_EQ(total, 600u);
  int nonempty = 0;
  for (auto c : plan.bin_components) nonempty += c > 0 ? 1 : 0;
  EXPECT_EQ(nonempty, 2);
  // Skew reflects imbalance: max 400 vs mean 120.
  EXPECT_NEAR(plan.skew(), 400.0 / 120.0, 1e-9);
}

TEST(GreedyBinPack, DeterministicUnderInputPermutation) {
  // Same component *set* in a different order must yield the same
  // root -> bin assignment (ties break on root, not input position).
  std::vector<Component> a = make_components({7, 7, 7, 2, 2, 10});
  std::vector<Component> b = a;
  std::reverse(b.begin(), b.end());
  const auto plan_a = greedy_bin_pack(a, 3);
  const auto plan_b = greedy_bin_pack(b, 3);
  const auto table_a = make_root_slot_table(a, plan_a);
  const auto table_b = make_root_slot_table(b, plan_b);
  EXPECT_EQ(table_a.roots, table_b.roots);
  EXPECT_EQ(table_a.slots, table_b.slots);
  EXPECT_EQ(plan_a.bin_weight_bp, plan_b.bin_weight_bp);
}

TEST(GreedyBinPack, RejectsBadBinCounts) {
  const auto comps = make_components({1});
  EXPECT_THROW(greedy_bin_pack(comps, 0), util::Error);
  EXPECT_THROW(greedy_bin_pack(comps, -3), util::Error);
  EXPECT_THROW(greedy_bin_pack(comps, 0x10000), util::Error);
}

TEST(GreedyBinPack, EmptyComponentSetIsWellDefined) {
  const auto plan = greedy_bin_pack({}, 4);
  EXPECT_EQ(plan.num_bins, 4);
  for (auto w : plan.bin_weight_bp) EXPECT_EQ(w, 0u);
  EXPECT_DOUBLE_EQ(plan.skew(), 0.0);
}

TEST(RootSlotTable, LookupBySortedBinarySearch) {
  const auto comps = make_components({5, 3, 9});  // roots 0, 7, 14
  const auto plan = greedy_bin_pack(comps, 2);
  const auto table = make_root_slot_table(comps, plan);
  ASSERT_EQ(table.roots.size(), 3u);
  EXPECT_TRUE(std::is_sorted(table.roots.begin(), table.roots.end()));
  for (std::size_t i = 0; i < comps.size(); ++i) {
    EXPECT_EQ(table.slot_of(comps[i].root), plan.slot_of[i]);
  }
  EXPECT_EQ(table.slot_of(1), RootSlotTable::kNoSlot);
  EXPECT_EQ(table.slot_of(999), RootSlotTable::kNoSlot);
  EXPECT_EQ(table.byte_size(), 3u * (4 + 2));
}

TEST(BinManifest, RoundTripsThroughJson) {
  test::TempDir dir;
  const auto comps = make_components({6, 4, 2});
  const auto plan = greedy_bin_pack(comps, 2);
  const std::vector<BinFile> files{{dir.file("x.p0.t0.b0.fastq"), 12},
                                   {dir.file("x.p0.t1.b1.fastq"), 5},
                                   {dir.file("x.p1.t0.b0.fastq"), 3}};
  const std::vector<std::uint16_t> file_bins{0, 1, 0};
  const auto manifest = build_bin_manifest("x \"quoted\"", 12, comps, plan, files, file_bins);
  const std::string path = dir.file("x.bins.json");
  save_bin_manifest(manifest, path);

  const auto loaded = load_bin_manifest(path);
  EXPECT_EQ(loaded.dataset, manifest.dataset);
  EXPECT_EQ(loaded.num_bins, manifest.num_bins);
  EXPECT_EQ(loaded.total_reads, manifest.total_reads);
  EXPECT_EQ(loaded.num_components, manifest.num_components);
  EXPECT_NEAR(loaded.skew, manifest.skew, 1e-6);
  ASSERT_EQ(loaded.bins.size(), manifest.bins.size());
  for (std::size_t b = 0; b < loaded.bins.size(); ++b) {
    EXPECT_EQ(loaded.bins[b].components, manifest.bins[b].components);
    EXPECT_EQ(loaded.bins[b].reads, manifest.bins[b].reads);
    EXPECT_EQ(loaded.bins[b].weight_bp, manifest.bins[b].weight_bp);
    ASSERT_EQ(loaded.bins[b].files.size(), manifest.bins[b].files.size());
    for (std::size_t f = 0; f < loaded.bins[b].files.size(); ++f) {
      EXPECT_EQ(loaded.bins[b].files[f].path, manifest.bins[b].files[f].path);
      EXPECT_EQ(loaded.bins[b].files[f].records, manifest.bins[b].files[f].records);
    }
  }
}

TEST(BinManifest, LoadRejectsMissingFileAndGarbage) {
  test::TempDir dir;
  EXPECT_THROW(load_bin_manifest(dir.file("nope.json")), util::Error);
  const std::string path = dir.file("bad.json");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"dataset\": \"x\", \"bins\": 3, \"rows\": []}", f);
  std::fclose(f);
  EXPECT_THROW(load_bin_manifest(path), util::Error);  // 3 bins, 0 rows
}

}  // namespace
}  // namespace metaprep::part
