// Tests for the §3.7 analytic memory model, including the paper's worked
// example for the IS dataset.
#include "core/memory_model.hpp"

#include <gtest/gtest.h>

namespace metaprep::core {
namespace {

/// The paper's IS example (§3.7): 8 passes, 16 tasks, 24 threads/task,
/// m = 10, C = 1536 chunks of ~0.3 GB, R = 1.13e9 reads, ~1.3e9 tuples per
/// task per pass => merHist 4 MB, FASTQPart ~6 GB, FASTQBuffer ~7 GB,
/// kmerIn/kmerOut ~14 GB each, p/p' ~8 GB together; total ~49 GB.
MemoryModelInput paper_is_input() {
  MemoryModelInput in;
  in.total_reads = 1'130'000'000ULL;
  // ~1.3e9 tuples/task/pass * 8 passes * 16 tasks.
  in.total_tuples = 1'300'000'000ULL * 8 * 16;
  in.num_chunks = 1536;
  in.max_chunk_bytes = 300'000'000ULL;  // ~0.3 GB
  in.m = 10;
  in.num_ranks = 16;
  in.threads_per_rank = 24;
  in.num_passes = 8;
  in.tuple_bytes = 12;
  return in;
}

TEST(MemoryModel, ReproducesThePaperIsExample) {
  const auto b = estimate_memory(paper_is_input());
  const double GB = 1e9;
  EXPECT_NEAR(static_cast<double>(b.mer_hist) / GB, 0.004, 0.001);
  EXPECT_NEAR(static_cast<double>(b.fastq_part) / GB, 6.4, 0.5);
  EXPECT_NEAR(static_cast<double>(b.fastq_buffer) / GB, 7.2, 0.5);
  EXPECT_NEAR(static_cast<double>(b.kmer_out) / GB, 15.6, 1.0);  // "~14 GB" (GiB)
  EXPECT_NEAR(static_cast<double>(b.kmer_in) / GB, 15.6, 1.0);
  EXPECT_NEAR(static_cast<double>(b.p_array + b.p_prime) / GB, 9.0, 1.0);  // "~8 GB"
  // Total ~49 GB (the paper sums rounded GiB-ish values; allow slack).
  EXPECT_NEAR(static_cast<double>(b.total) / GB, 52.6, 4.0);
}

TEST(MemoryModel, TupleBuffersShrinkWithMorePasses) {
  auto in = paper_is_input();
  std::uint64_t prev = ~0ULL;
  for (int s : {1, 2, 4, 8, 16}) {
    in.num_passes = s;
    const auto b = estimate_memory(in);
    EXPECT_LT(b.kmer_out, prev);
    prev = b.kmer_out;
  }
}

TEST(MemoryModel, FixedTermsIndependentOfPasses) {
  auto in = paper_is_input();
  in.num_passes = 1;
  const auto b1 = estimate_memory(in);
  in.num_passes = 8;
  const auto b8 = estimate_memory(in);
  EXPECT_EQ(b1.mer_hist, b8.mer_hist);
  EXPECT_EQ(b1.fastq_part, b8.fastq_part);
  EXPECT_EQ(b1.fastq_buffer, b8.fastq_buffer);
  EXPECT_EQ(b1.p_array, b8.p_array);
}

TEST(MemoryModel, WideTuplesCost20Bytes) {
  auto in = paper_is_input();
  const auto narrow = estimate_memory(in);
  in.tuple_bytes = 20;
  const auto wide = estimate_memory(in);
  EXPECT_NEAR(static_cast<double>(wide.kmer_out) / static_cast<double>(narrow.kmer_out),
              20.0 / 12.0, 1e-9);
}

TEST(MemoryModel, MinPassesMonotoneInBudget) {
  const auto in = paper_is_input();
  const int tight = min_passes_for_budget(in, 50'000'000'000ULL);   // 50 GB
  const int loose = min_passes_for_budget(in, 200'000'000'000ULL);  // 200 GB
  EXPECT_GT(tight, 0);
  EXPECT_GT(loose, 0);
  EXPECT_LE(loose, tight);
}

TEST(MemoryModel, PaperBudgetNeedsEightishPasses) {
  // With a 64 GB Edison node and ~50 GB of usable budget, the model should
  // land near the paper's choice of 8 passes for 16 nodes.
  const int s = min_passes_for_budget(paper_is_input(), 53'000'000'000ULL);
  EXPECT_GE(s, 6);
  EXPECT_LE(s, 10);
}

TEST(MemoryModel, ImpossibleBudgetReturnsZero) {
  EXPECT_EQ(min_passes_for_budget(paper_is_input(), 1'000'000ULL), 0);
}

TEST(MemoryModel, InvalidInputThrows) {
  auto in = paper_is_input();
  in.num_ranks = 0;
  EXPECT_THROW(estimate_memory(in), std::invalid_argument);
}

}  // namespace
}  // namespace metaprep::core
