// Tests for the Union-Find structures and Shiloach-Vishkin baseline.
#include "dsu/dsu.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "dsu/shiloach_vishkin.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/thread_team.hpp"

namespace metaprep::dsu {
namespace {

using Edge = std::pair<std::uint32_t, std::uint32_t>;

std::vector<Edge> random_edges(std::uint32_t n, std::size_t count, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Edge> edges(count);
  for (auto& e : edges) {
    e.first = static_cast<std::uint32_t>(rng.next_below(n));
    e.second = static_cast<std::uint32_t>(rng.next_below(n));
  }
  return edges;
}

/// Reference CC via repeated label relaxation (slow but obviously correct).
std::vector<std::uint32_t> reference_cc(std::uint32_t n, const std::vector<Edge>& edges) {
  std::vector<std::uint32_t> label(n);
  for (std::uint32_t i = 0; i < n; ++i) label[i] = i;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [u, v] : edges) {
      const std::uint32_t m = std::min(label[u], label[v]);
      if (label[u] != m) {
        label[u] = m;
        changed = true;
      }
      if (label[v] != m) {
        label[v] = m;
        changed = true;
      }
    }
  }
  return label;
}

TEST(SerialDSU, SingletonsInitially) {
  SerialDSU dsu(5);
  EXPECT_EQ(dsu.component_count(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(dsu.find(i), i);
}

TEST(SerialDSU, UniteReturnsWhetherMerged) {
  SerialDSU dsu(4);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_EQ(dsu.component_count(), 1u);
}

TEST(SerialDSU, UnionByIndexKeepsHigherIndexAsRoot) {
  SerialDSU dsu(10);
  dsu.unite(2, 7);
  EXPECT_EQ(dsu.find(2), 7u);
  dsu.unite(7, 3);
  EXPECT_EQ(dsu.find(3), 7u);
  // Root of merged component is the max index seen.
  dsu.unite(9, 2);
  EXPECT_EQ(dsu.find(3), 9u);
}

TEST(SerialDSU, AdoptedParentsBehave) {
  // Forest: 0->1->2 (2 root), 3 root.
  SerialDSU dsu(std::vector<std::uint32_t>{1, 2, 2, 3});
  EXPECT_EQ(dsu.find(0), 2u);
  EXPECT_EQ(dsu.component_count(), 2u);
  auto parents = dsu.take_parents();
  EXPECT_EQ(parents.size(), 4u);
}

TEST(SerialDSU, MatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const std::uint32_t n = 200;
    const auto edges = random_edges(n, 150, seed);
    SerialDSU dsu(n);
    for (const auto& [u, v] : edges) dsu.unite(u, v);
    EXPECT_EQ(test::normalize_partition(dsu.labels()),
              test::normalize_partition(reference_cc(n, edges)));
  }
}

TEST(AtomicDSU, SequentialBehaviorMatchesSerial) {
  const std::uint32_t n = 300;
  const auto edges = random_edges(n, 400, 77);
  SerialDSU s(n);
  AtomicDSU a(n);
  for (const auto& [u, v] : edges) {
    EXPECT_EQ(s.unite(u, v), a.unite(u, v));
  }
  EXPECT_EQ(test::normalize_partition(s.labels()), test::normalize_partition(a.labels()));
  EXPECT_EQ(s.component_count(), a.component_count());
}

TEST(AtomicDSU, AdoptedParentsSupportConcurrentFlatten) {
  // The pipeline's MergeCC flatten adopts the merged serial forest into an
  // AtomicDSU and runs find() + atomic size counting from the whole thread
  // team.  Mirror that access pattern against a serial flatten.
  const std::uint32_t n = 2000;
  const auto edges = random_edges(n, 1500, 99);
  SerialDSU s(n);
  for (const auto& [u, v] : edges) s.unite(u, v);
  const auto parents = s.take_parents();

  AtomicDSU a{std::span<const std::uint32_t>(parents)};
  const int threads = 4;
  util::ThreadTeam team(threads);
  const auto bounds = util::split_range(n, threads);
  std::vector<std::uint32_t> labels(n);
  std::vector<std::uint32_t> sizes(n, 0);
  team.run([&](int t) {
    for (std::size_t i = bounds[static_cast<std::size_t>(t)];
         i < bounds[static_cast<std::size_t>(t) + 1]; ++i) {
      const std::uint32_t root = a.find(static_cast<std::uint32_t>(i));
      labels[i] = root;
      std::atomic_ref<std::uint32_t>(sizes[root]).fetch_add(1, std::memory_order_relaxed);
    }
  });

  SerialDSU s2(std::vector<std::uint32_t>(parents.begin(), parents.end()));
  std::uint64_t counted = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(labels[i], s2.find(i));
    counted += sizes[i];
  }
  EXPECT_EQ(counted, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (sizes[i] > 0) { EXPECT_EQ(labels[i], i); }  // only roots accumulate size
  }
}

TEST(AtomicDSU, ResetRestoresSingletons) {
  AtomicDSU a(10);
  a.unite(1, 2);
  a.reset();
  EXPECT_EQ(a.component_count(), 10u);
}

class ConcurrentDSUTest : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentDSUTest, ConcurrentUnitesMatchReference) {
  const int threads = GetParam();
  const std::uint32_t n = 2000;
  for (std::uint64_t seed : {10ULL, 20ULL, 30ULL}) {
    const auto edges = random_edges(n, 3000, seed);
    AtomicDSU dsu(n);
    util::ThreadTeam team(threads);
    const auto bounds = util::split_range(edges.size(), threads);
    team.run([&](int t) {
      for (std::size_t i = bounds[static_cast<std::size_t>(t)];
           i < bounds[static_cast<std::size_t>(t) + 1]; ++i) {
        dsu.unite(edges[i].first, edges[i].second);
      }
    });
    EXPECT_EQ(test::normalize_partition(dsu.labels()),
              test::normalize_partition(reference_cc(n, edges)));
  }
}

TEST_P(ConcurrentDSUTest, Algorithm1MatchesReferenceUnderConcurrency) {
  const int threads = GetParam();
  const std::uint32_t n = 2000;
  for (std::uint64_t seed : {40ULL, 50ULL}) {
    const auto edges = random_edges(n, 3000, seed);
    AtomicDSU dsu(n);
    util::ThreadTeam team(threads);
    const auto bounds = util::split_range(edges.size(), threads);
    std::vector<int> iters(static_cast<std::size_t>(threads), 0);
    team.run([&](int t) {
      const std::span<const Edge> mine(edges.data() + bounds[static_cast<std::size_t>(t)],
                                       bounds[static_cast<std::size_t>(t) + 1] -
                                           bounds[static_cast<std::size_t>(t)]);
      iters[static_cast<std::size_t>(t)] = process_edges_algorithm1(dsu, mine);
    });
    EXPECT_EQ(test::normalize_partition(dsu.labels()),
              test::normalize_partition(reference_cc(n, edges)));
    for (int it : iters) EXPECT_GE(it, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ConcurrentDSUTest, ::testing::Values(1, 2, 4, 8));

TEST(Algorithm1, EmptyEdgeListTakesZeroIterations) {
  AtomicDSU dsu(5);
  EXPECT_EQ(process_edges_algorithm1(dsu, {}), 0);
}

TEST(Algorithm1, ChainConverges) {
  AtomicDSU dsu(100);
  std::vector<Edge> chain;
  for (std::uint32_t i = 0; i + 1 < 100; ++i) chain.emplace_back(i, i + 1);
  const int iters = process_edges_algorithm1(dsu, chain);
  EXPECT_GE(iters, 1);
  EXPECT_EQ(dsu.component_count(), 1u);
}

TEST(ShiloachVishkin, EmptyGraph) {
  const auto r = shiloach_vishkin(5, {});
  EXPECT_EQ(r.labels, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(ShiloachVishkin, MatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed : {5ULL, 6ULL, 7ULL, 8ULL}) {
    const std::uint32_t n = 500;
    const auto edges = random_edges(n, 600, seed);
    const auto sv = shiloach_vishkin(n, edges);
    EXPECT_EQ(test::normalize_partition(sv.labels),
              test::normalize_partition(reference_cc(n, edges)));
    EXPECT_GE(sv.iterations, 1);
  }
}

TEST(ShiloachVishkin, LongPathNeedsLogarithmicIterations) {
  // A path of length 2^12 should need noticeably more iterations than a
  // star (this is the structural difference Table 4 exploits).
  const std::uint32_t n = 4096;
  std::vector<Edge> path;
  for (std::uint32_t i = 0; i + 1 < n; ++i) path.emplace_back(i, i + 1);
  const auto on_path = shiloach_vishkin(n, path);

  std::vector<Edge> star;
  for (std::uint32_t i = 1; i < n; ++i) star.emplace_back(0, i);
  const auto on_star = shiloach_vishkin(n, star);

  EXPECT_GT(on_path.iterations, on_star.iterations);
  EXPECT_LE(on_star.iterations, 3);
}

}  // namespace
}  // namespace metaprep::dsu
