// Tests for the packed mmap read store (io::PackedStore) and its scanners.
//
// Three layers:
//  * arena round-trips — builder -> file -> mmap preserves every record,
//    chunk range, N position, and skip ID, including the degenerate shapes
//    (empty arena, all-N reads, reads shorter than k, arenas spanning mmap
//    page boundaries);
//  * corruption — truncated files, bad magic/version, corrupt header or
//    payload bytes must surface as typed util::Error, never a crash;
//  * scanner equivalence — the packed word-at-a-time scanners must be
//    bit-exact (same k-mers, same start positions, same order) against the
//    char scanners on the original text, for random reads with Ns and
//    lowercase, across the 64-bit and 128-bit paths.
#include "io/packed_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/index_create.hpp"
#include "core/packed_ingest.hpp"
#include "core/pipeline.hpp"
#include "kmer/scanner.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace metaprep::io {
namespace {

using test::TempDir;

/// Decode a packed record back to text: ACGT from the 2-bit codes, 'N' at
/// every recorded ambiguous position.
std::string decode_record(const PackedStore::Record& rec) {
  static constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  std::string out(rec.len, '?');
  for (std::uint32_t i = 0; i < rec.len; ++i) {
    out[i] = kBases[(rec.words[i >> 5] >> (2 * (i & 31))) & 3];
  }
  for (std::uint32_t j = 0; j < rec.ncount; ++j) out[rec.npos[j]] = 'N';
  return out;
}

/// What decode_record should produce for @p seq: uppercased, every
/// non-ACGT symbol replaced by 'N'.
std::string canonical_text(const std::string& seq) {
  std::string out = seq;
  for (char& c : out) {
    switch (c) {
      case 'a': c = 'A'; break;
      case 'c': c = 'C'; break;
      case 'g': c = 'G'; break;
      case 't': c = 'T'; break;
      case 'A': case 'C': case 'G': case 'T': break;
      default: c = 'N'; break;
    }
  }
  return out;
}

/// Build an arena holding @p chunks (each a list of sequences), assigning
/// read IDs sequentially, and return its opened view.
PackedStore build_arena(const std::string& path,
                        const std::vector<std::vector<std::string>>& chunks,
                        const std::vector<std::uint32_t>& skips = {}) {
  PackedStoreBuilder builder(static_cast<std::uint32_t>(chunks.size()));
  std::uint32_t id = 0;
  for (std::uint32_t c = 0; c < chunks.size(); ++c) {
    builder.begin_chunk(c);
    for (const auto& seq : chunks[c]) builder.add_record(id++, seq);
  }
  for (auto s : skips) builder.add_skip(s);
  builder.write(path);
  return PackedStore::open(path);
}

TEST(PackedStore, BuilderRoundTripPreservesRecordsAndChunks) {
  TempDir dir;
  const std::vector<std::vector<std::string>> chunks = {
      {"ACGTACGTACGT", "TTTTNGGGG", "acgtN"},
      {},  // empty chunk in the middle must keep ranges consistent
      {"GATTACA", std::string(70, 'C')},
  };
  const auto ps = build_arena(dir.file("a.mprs"), chunks);
  EXPECT_TRUE(ps.is_open());
  EXPECT_EQ(ps.num_chunks(), 3u);
  EXPECT_EQ(ps.num_records(), 5u);
  EXPECT_EQ(ps.total_bases(), 12u + 9 + 5 + 7 + 70);
  EXPECT_EQ(ps.chunk_begin(0), 0u);
  EXPECT_EQ(ps.chunk_end(0), 3u);
  EXPECT_EQ(ps.chunk_begin(1), ps.chunk_end(1));
  EXPECT_EQ(ps.chunk_begin(2), 3u);
  EXPECT_EQ(ps.chunk_end(2), 5u);
  std::uint32_t id = 0;
  for (const auto& chunk : chunks) {
    for (const auto& seq : chunk) {
      const auto rec = ps.record(id);
      EXPECT_EQ(rec.read_id, id);
      EXPECT_EQ(rec.len, seq.size());
      EXPECT_EQ(decode_record(rec), canonical_text(seq)) << "record " << id;
      ++id;
    }
  }
  ps.verify_payload();  // pristine arena passes the full integrity audit
}

TEST(PackedStore, FinishInMemoryMatchesWrittenArena) {
  TempDir dir;
  const std::vector<std::vector<std::string>> chunks = {
      {"ACGTACGTACGT", "TTTTNGGGG", "acgtN"},
      {},
      {"GATTACA", std::string(70, 'C')},
  };
  const auto disk = build_arena(dir.file("disk.mprs"), chunks, {7, 3});

  PackedStoreBuilder builder(static_cast<std::uint32_t>(chunks.size()));
  std::uint32_t id = 0;
  for (std::uint32_t c = 0; c < chunks.size(); ++c) {
    builder.begin_chunk(c);
    for (const auto& seq : chunks[c]) builder.add_record(id++, seq);
  }
  builder.add_skip(7);
  builder.add_skip(3);
  PackedStoreStats stats{};
  const PackedStore mem = builder.finish(&stats);

  EXPECT_TRUE(mem.is_open());
  EXPECT_TRUE(mem.path().empty());  // never serialized
  EXPECT_EQ(stats.records, disk.num_records());
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(mem.file_bytes(), disk.file_bytes());  // size its file would be
  ASSERT_EQ(mem.num_records(), disk.num_records());
  ASSERT_EQ(mem.num_chunks(), disk.num_chunks());
  EXPECT_EQ(mem.total_bases(), disk.total_bases());
  for (std::uint32_t c = 0; c < mem.num_chunks(); ++c) {
    EXPECT_EQ(mem.chunk_begin(c), disk.chunk_begin(c));
    EXPECT_EQ(mem.chunk_end(c), disk.chunk_end(c));
  }
  for (std::uint64_t r = 0; r < mem.num_records(); ++r) {
    EXPECT_EQ(decode_record(mem.record(r)), decode_record(disk.record(r)));
    EXPECT_EQ(mem.record(r).read_id, disk.record(r).read_id);
  }
  ASSERT_EQ(mem.skipped_read_ids().size(), disk.skipped_read_ids().size());
  EXPECT_TRUE(std::equal(mem.skipped_read_ids().begin(), mem.skipped_read_ids().end(),
                         disk.skipped_read_ids().begin()));
  mem.verify_payload();  // no serialized payload: must be a no-op, not a throw
}

TEST(PackedStore, EmptyArenaRoundTrips) {
  TempDir dir;
  const auto ps = build_arena(dir.file("empty.mprs"), {{}, {}});
  EXPECT_EQ(ps.num_records(), 0u);
  EXPECT_EQ(ps.num_chunks(), 2u);
  EXPECT_EQ(ps.total_bases(), 0u);
  EXPECT_EQ(ps.chunk_begin(0), ps.chunk_end(1));
  EXPECT_TRUE(ps.skipped_read_ids().empty());
  ps.verify_payload();
}

TEST(PackedStore, TrailingChunksNeedNoExplicitBegin) {
  // The pipeline appends chunks in order but write() must pad any trailing
  // empty chunks so chunk_end(last) stays valid.
  TempDir dir;
  PackedStoreBuilder builder(4);
  builder.begin_chunk(0);
  builder.add_record(0, "ACGT");
  builder.write(dir.file("t.mprs"));
  const auto ps = PackedStore::open(dir.file("t.mprs"));
  EXPECT_EQ(ps.num_chunks(), 4u);
  EXPECT_EQ(ps.chunk_end(0), 1u);
  EXPECT_EQ(ps.chunk_begin(3), 1u);
  EXPECT_EQ(ps.chunk_end(3), 1u);
}

TEST(PackedStore, OutOfOrderChunkThrowsConfigError) {
  PackedStoreBuilder builder(3);
  builder.begin_chunk(0);
  try {
    builder.begin_chunk(2);  // skipped chunk 1
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kConfig);
  }
}

TEST(PackedStore, SkipListRoundTrips) {
  TempDir dir;
  const std::vector<std::uint32_t> skips = {7, 3, 3, 900000};
  const auto ps = build_arena(dir.file("s.mprs"), {{"ACGT"}}, skips);
  const auto got = ps.skipped_read_ids();
  ASSERT_EQ(got.size(), skips.size());
  for (std::size_t i = 0; i < skips.size(); ++i) EXPECT_EQ(got[i], skips[i]);
  ps.verify_payload();
}

TEST(PackedStore, AllNReadYieldsNoKmers) {
  TempDir dir;
  const std::string seq(50, 'N');
  const auto ps = build_arena(dir.file("n.mprs"), {{seq}});
  const auto rec = ps.record(0);
  EXPECT_EQ(rec.ncount, seq.size());
  int calls = 0;
  kmer::for_each_canonical_kmer64_packed(rec.words, rec.len, rec.npos, rec.ncount, 15,
                                         [&](std::uint64_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  kmer::for_each_canonical_kmer128_packed(rec.words, rec.len, rec.npos, rec.ncount, 33,
                                          [&](kmer::Kmer128, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(PackedStore, ReadShorterThanKYieldsNoKmers) {
  TempDir dir;
  const auto ps = build_arena(dir.file("short.mprs"), {{"ACGTACGTAC", ""}});
  for (std::uint64_t r = 0; r < ps.num_records(); ++r) {
    const auto rec = ps.record(r);
    int calls = 0;
    kmer::for_each_canonical_kmer64_packed(rec.words, rec.len, rec.npos, rec.ncount, 31,
                                           [&](std::uint64_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0) << "record " << r;
  }
}

// ---------------------------------------------------------------------------
// Corruption: every malformed arena must fail with a typed util::Error.

/// Write @p bytes to a fresh file at @p path.
void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The full byte content of @p path.
std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

/// A small valid arena file's bytes (built fresh per test).
std::string valid_arena_bytes(TempDir& dir) {
  const std::string path = dir.file("valid.mprs");
  build_arena(path, {{"ACGTACGTACGTACGTNACGT", "GGGGCCCCAAAATTTT"}});
  return slurp(path);
}

template <typename Fn>
void expect_error(util::ErrorCategory category, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), category) << e.what();
  }
}

TEST(PackedStore, MissingFileThrowsIoError) {
  expect_error(util::ErrorCategory::kIo,
               [] { (void)PackedStore::open("/nonexistent/x.mprs"); });
}

TEST(PackedStore, FileShorterThanHeaderThrowsIoError) {
  TempDir dir;
  const std::string path = dir.file("stub.mprs");
  write_bytes(path, "");  // empty file
  expect_error(util::ErrorCategory::kIo, [&] { (void)PackedStore::open(path); });
  write_bytes(path, "MPRS\x01");  // a few header bytes only
  expect_error(util::ErrorCategory::kIo, [&] { (void)PackedStore::open(path); });
}

TEST(PackedStore, BadMagicThrowsParseError) {
  TempDir dir;
  auto bytes = valid_arena_bytes(dir);
  bytes[0] ^= 0x5A;
  const std::string path = dir.file("magic.mprs");
  write_bytes(path, bytes);
  expect_error(util::ErrorCategory::kParse, [&] { (void)PackedStore::open(path); });
}

TEST(PackedStore, VersionMismatchThrowsParseError) {
  TempDir dir;
  auto bytes = valid_arena_bytes(dir);
  bytes[4] = 0x7F;  // version field, little-endian low byte
  const std::string path = dir.file("version.mprs");
  write_bytes(path, bytes);
  expect_error(util::ErrorCategory::kParse, [&] { (void)PackedStore::open(path); });
}

TEST(PackedStore, CorruptHeaderCountThrowsParseError) {
  TempDir dir;
  auto bytes = valid_arena_bytes(dir);
  bytes[8] ^= 0x01;  // num_records low byte: header checksum must catch it
  const std::string path = dir.file("count.mprs");
  write_bytes(path, bytes);
  expect_error(util::ErrorCategory::kParse, [&] { (void)PackedStore::open(path); });
}

TEST(PackedStore, TruncatedPayloadThrowsIoError) {
  TempDir dir;
  auto bytes = valid_arena_bytes(dir);
  bytes.pop_back();  // header valid, payload one byte short
  const std::string path = dir.file("trunc.mprs");
  write_bytes(path, bytes);
  expect_error(util::ErrorCategory::kIo, [&] { (void)PackedStore::open(path); });
}

TEST(PackedStore, CorruptPayloadFailsVerifyPayloadOnly) {
  TempDir dir;
  auto bytes = valid_arena_bytes(dir);
  bytes.back() ^= 0x40;  // flip a base bit in the last word
  const std::string path = dir.file("payload.mprs");
  write_bytes(path, bytes);
  const auto ps = PackedStore::open(path);  // open is O(1), stays lazy
  expect_error(util::ErrorCategory::kParse, [&] { ps.verify_payload(); });
}

// ---------------------------------------------------------------------------
// Scanner equivalence: packed scan == char scan, bit for bit.

std::string random_read(std::mt19937& rng, std::size_t len) {
  static constexpr char kAlphabet[] = "ACGTacgtN";  // Ns and lowercase mixed in
  std::uniform_int_distribution<int> pick(0, 8);
  std::uniform_int_distribution<int> rare(0, 9);
  std::string s(len, 'A');
  for (auto& c : s) {
    // mostly uppercase ACGT, ~10% chance of the full alphabet (N, lowercase)
    c = rare(rng) == 0 ? kAlphabet[pick(rng)] : kAlphabet[pick(rng) % 4];
  }
  return s;
}

TEST(PackedStore, PackedScanner64MatchesCharScannerBitExactly) {
  TempDir dir;
  std::mt19937 rng(20260809);
  std::vector<std::string> reads;
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 64u, 65u, 100u, 151u, 250u}) {
    for (int rep = 0; rep < 4; ++rep) reads.push_back(random_read(rng, len));
  }
  const auto ps = build_arena(dir.file("scan64.mprs"), {reads});
  for (int k : {1, 2, 15, 27, 31, 32}) {
    for (std::uint64_t r = 0; r < ps.num_records(); ++r) {
      std::vector<std::pair<std::uint64_t, std::size_t>> from_text;
      std::vector<std::pair<std::uint64_t, std::size_t>> from_packed;
      kmer::for_each_canonical_kmer64(reads[r], k, [&](std::uint64_t km, std::size_t pos) {
        from_text.emplace_back(km, pos);
      });
      const auto rec = ps.record(r);
      kmer::for_each_canonical_kmer64_packed(
          rec.words, rec.len, rec.npos, rec.ncount, k,
          [&](std::uint64_t km, std::size_t pos) { from_packed.emplace_back(km, pos); });
      EXPECT_EQ(from_packed, from_text) << "k=" << k << " record " << r;
    }
  }
}

TEST(PackedStore, PackedScanner128MatchesCharScannerBitExactly) {
  TempDir dir;
  std::mt19937 rng(809);
  std::vector<std::string> reads;
  for (int rep = 0; rep < 12; ++rep) reads.push_back(random_read(rng, 40 + rep * 13));
  const auto ps = build_arena(dir.file("scan128.mprs"), {reads});
  for (int k : {33, 47, 63}) {
    for (std::uint64_t r = 0; r < ps.num_records(); ++r) {
      std::vector<std::pair<kmer::Kmer128, std::size_t>> from_text;
      std::vector<std::pair<kmer::Kmer128, std::size_t>> from_packed;
      kmer::for_each_canonical_kmer128(
          reads[r], k,
          [&](kmer::Kmer128 km, std::size_t pos) { from_text.emplace_back(km, pos); });
      const auto rec = ps.record(r);
      kmer::for_each_canonical_kmer128_packed(
          rec.words, rec.len, rec.npos, rec.ncount, k,
          [&](kmer::Kmer128 km, std::size_t pos) { from_packed.emplace_back(km, pos); });
      EXPECT_EQ(from_packed, from_text) << "k=" << k << " record " << r;
    }
  }
}

TEST(PackedStore, ArenaSpanningPageBoundariesScansCorrectly) {
  // > 3 pages of base words alone, so records straddle mmap page boundaries;
  // every record must still decode and scan identically to the text.
  TempDir dir;
  std::mt19937 rng(4096);
  std::vector<std::vector<std::string>> chunks(4);
  std::vector<std::string> all;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (int i = 0; i < 120; ++i) {
      chunks[c].push_back(random_read(rng, 100));
      all.push_back(chunks[c].back());
    }
  }
  const std::string path = dir.file("pages.mprs");
  const auto ps = build_arena(path, chunks);
  EXPECT_GT(ps.file_bytes(), 3u * 4096);
  ps.verify_payload();
  constexpr int kK = 21;
  for (std::uint64_t r = 0; r < ps.num_records(); ++r) {
    std::vector<std::pair<std::uint64_t, std::size_t>> from_text;
    std::vector<std::pair<std::uint64_t, std::size_t>> from_packed;
    kmer::for_each_canonical_kmer64(all[r], kK, [&](std::uint64_t km, std::size_t pos) {
      from_text.emplace_back(km, pos);
    });
    const auto rec = ps.record(r);
    ASSERT_EQ(decode_record(rec), canonical_text(all[r])) << "record " << r;
    kmer::for_each_canonical_kmer64_packed(
        rec.words, rec.len, rec.npos, rec.ncount, kK,
        [&](std::uint64_t km, std::size_t pos) { from_packed.emplace_back(km, pos); });
    ASSERT_EQ(from_packed, from_text) << "record " << r;
  }
}

TEST(PackedStore, MergedShardsMatchSerialBuild) {
  TempDir dir;
  const std::vector<std::vector<std::string>> chunks = {
      {"ACGTACGTACGT", "TTTTNGGGG"}, {"acgtN"}, {}, {"GATTACA"},
      {std::string(70, 'C'), "AaCcGgTt"},
  };
  // Serial reference build.
  build_arena(dir.file("serial.mprs"), chunks, {9});

  // Same records via three shards of 2 + 1 + 2 chunks, merged in order.
  PackedStoreBuilder merged(static_cast<std::uint32_t>(chunks.size()));
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges = {
      {0, 2}, {2, 3}, {3, 5}};
  std::uint32_t id = 0;
  for (const auto& [begin, end] : ranges) {
    PackedStoreBuilder shard(end - begin);
    for (std::uint32_t c = begin; c < end; ++c) {
      shard.begin_chunk(c - begin);
      for (const auto& seq : chunks[c]) shard.add_record(id++, seq);
    }
    if (begin == 0) shard.add_skip(9);
    merged.merge(std::move(shard));
  }
  merged.write(dir.file("merged.mprs"));

  EXPECT_EQ(slurp(dir.file("merged.mprs")), slurp(dir.file("serial.mprs")));
}

TEST(PackedStore, MergeOverrunningChunkTableThrowsConfigError) {
  PackedStoreBuilder merged(2);
  PackedStoreBuilder big(3);
  expect_error(util::ErrorCategory::kConfig, [&] { merged.merge(std::move(big)); });
}

// ---------------------------------------------------------------------------
// Lenient-parse consistency (satellite of the lenient-parse bugfix): a FASTQ
// corpus corrupted *after* indexing must flow through the packed and text
// pipelines identically — same skipped records, same partition.

/// One paired dataset of @p pairs random reads; returns {file1, file2}.
std::vector<std::string> write_paired_fastq(TempDir& dir, int pairs, std::mt19937& rng) {
  std::vector<std::string> files;
  for (int mate = 1; mate <= 2; ++mate) {
    std::vector<std::string> reads;
    reads.reserve(static_cast<std::size_t>(pairs));
    for (int i = 0; i < pairs; ++i) reads.push_back(random_read(rng, 80));
    files.push_back(test::write_fastq(dir.file("corr_" + std::to_string(mate) + ".fastq"),
                                      reads, "corr." + std::to_string(mate) + "."));
  }
  return files;
}

/// Corrupt record @p idx of @p path in place (same byte length): clobber its
/// '+' separator so strict parsing fails and lenient parsing resyncs.
void corrupt_record_separator(const std::string& path, int idx) {
  auto bytes = slurp(path);
  std::size_t pos = 0;
  for (int seen = 0; pos < bytes.size(); ++pos) {
    if (bytes[pos] == '+' && (pos == 0 || bytes[pos - 1] == '\n')) {
      if (seen++ == idx) break;
    }
  }
  ASSERT_LT(pos, bytes.size());
  bytes[pos] = 'J';
  write_bytes(path, bytes);
}

TEST(PackedStore, CorruptedFastqAgreesBetweenPackedAndTextPipelines) {
  TempDir dir;
  std::mt19937 rng(77);
  const auto files = write_paired_fastq(dir, 60, rng);
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 5;
  opt.target_chunks = 6;
  const auto index = core::create_index("corr", files, true, opt);

  // Corrupt two records after indexing: chunk byte ranges stay valid, the
  // records just fail to parse.
  corrupt_record_separator(files[0], 11);
  corrupt_record_separator(files[1], 42);

  // Strict ingest refuses the corpus with a typed parse error...
  expect_error(util::ErrorCategory::kParse, [&] {
    core::build_packed_store(index, dir.file("strict.mprs"), ParseMode::kStrict);
  });

  // ...lenient ingest records exactly the corrupted read IDs in the arena.
  const auto stats =
      core::build_packed_store(index, dir.file("lenient.mprs"), ParseMode::kLenient);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.records, 2u * 60 - 2);
  const auto arena = PackedStore::open(dir.file("lenient.mprs"));
  std::vector<std::uint32_t> skipped(arena.skipped_read_ids().begin(),
                                     arena.skipped_read_ids().end());
  std::sort(skipped.begin(), skipped.end());
  EXPECT_EQ(skipped, (std::vector<std::uint32_t>{11, 42}));

  // Both pipelines, both schedulers: identical skip counts and partitions.
  core::MetaprepConfig cfg;
  cfg.k = 15;
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  cfg.parse_mode = ParseMode::kLenient;
  cfg.write_output = false;
  std::vector<std::vector<std::uint32_t>> partitions;
  for (auto mode : {core::PipelineMode::kBarrier, core::PipelineMode::kOverlap}) {
    for (auto store : {core::ReadStore::kText, core::ReadStore::kPacked}) {
      cfg.pipeline_mode = mode;
      cfg.read_store = store;
      const auto result = core::run_metaprep(index, cfg);
      EXPECT_EQ(result.records_skipped, 2u)
          << "mode=" << static_cast<int>(mode) << " store=" << static_cast<int>(store);
      partitions.push_back(test::normalize_partition(result.labels));
    }
  }
  for (std::size_t i = 1; i < partitions.size(); ++i) {
    EXPECT_EQ(partitions[i], partitions[0]) << "combination " << i;
  }
}

TEST(PackedStore, ParallelIngestIsByteIdenticalToSerial) {
  TempDir dir;
  std::mt19937 rng(123);
  const auto files = write_paired_fastq(dir, 80, rng);
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 5;
  opt.target_chunks = 7;
  const auto index = core::create_index("par", files, true, opt);
  corrupt_record_separator(files[1], 20);  // lenient skips must merge too

  const auto s1 =
      core::build_packed_store(index, dir.file("t1.mprs"), ParseMode::kLenient, 1);
  EXPECT_EQ(s1.skipped, 1u);
  core::build_packed_store(index, dir.file("t4.mprs"), ParseMode::kLenient, 4);
  // More workers than chunks must clamp, not break the shard bounds.
  core::build_packed_store(index, dir.file("t9.mprs"), ParseMode::kLenient, 9);
  const auto serial = slurp(dir.file("t1.mprs"));
  EXPECT_EQ(slurp(dir.file("t4.mprs")), serial);
  EXPECT_EQ(slurp(dir.file("t9.mprs")), serial);

  // The in-memory ephemeral path sees the same records and skips.
  PackedStoreStats stats{};
  const auto mem =
      core::build_packed_store_in_memory(index, ParseMode::kLenient, 3, &stats);
  const auto disk = PackedStore::open(dir.file("t1.mprs"));
  ASSERT_EQ(mem.num_records(), disk.num_records());
  EXPECT_EQ(stats.records, disk.num_records());
  EXPECT_EQ(mem.file_bytes(), disk.file_bytes());
  for (std::uint64_t r = 0; r < mem.num_records(); ++r) {
    ASSERT_EQ(decode_record(mem.record(r)), decode_record(disk.record(r)))
        << "record " << r;
  }
  ASSERT_EQ(mem.skipped_read_ids().size(), 1u);
  EXPECT_EQ(mem.skipped_read_ids()[0], disk.skipped_read_ids()[0]);
}

}  // namespace
}  // namespace metaprep::io
