// Tests for the partition manifest.
#include "core/manifest.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>

#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace metaprep::core {
namespace {

using test::TempDir;

TEST(Manifest, PartitionClassOfRecognizesSuffixes) {
  EXPECT_EQ(partition_class_of("/x/ds.p0.t1.lc.fastq"), "lc");
  EXPECT_EQ(partition_class_of("/x/ds.p0.t1.other.fastq"), "other");
  EXPECT_EQ(partition_class_of("/x/ds.p2.t0.c0.fastq"), "c0");
  EXPECT_EQ(partition_class_of("/x/ds.p2.t0.c17.fastq"), "c17");
  EXPECT_EQ(partition_class_of("/x/random.fastq"), "unknown");
}

struct ManifestFixture {
  TempDir dir;
  DatasetIndex index;
  PipelineResult result;

  explicit ManifestFixture(int top_n) {
    sim::DatasetConfig cfg;
    cfg.name = "mani";
    cfg.genomes.num_species = 4;
    cfg.genomes.min_genome_len = 3000;
    cfg.genomes.max_genome_len = 5000;
    cfg.num_pairs = 150;
    const auto ds = sim::simulate_dataset(cfg, dir.file("mani"));
    IndexCreateOptions opt;
    opt.k = 15;
    opt.m = 5;
    opt.target_chunks = 4;
    index = create_index("mani", ds.files, true, opt);
    MetaprepConfig mp;
    mp.k = 15;
    mp.num_ranks = 2;
    mp.threads_per_rank = 2;
    mp.write_output = true;
    mp.output_top_components = top_n;
    mp.output_dir = dir.str();
    result = run_metaprep(index, mp);
  }
};

TEST(Manifest, BuildAccountsForEveryRecord) {
  ManifestFixture fx(1);
  const auto m = build_manifest(fx.index, fx.result);
  EXPECT_EQ(m.dataset, "mani");
  EXPECT_EQ(m.k, 15);
  EXPECT_EQ(m.num_reads, fx.result.num_reads);
  EXPECT_EQ(m.total_records(), 2ull * fx.result.num_reads);
  // LC entries hold exactly 2 * largest_size records.
  std::map<std::string, std::uint64_t> per_class;
  for (const auto& e : m.entries) per_class[e.partition] += e.records;
  EXPECT_EQ(per_class.at("lc"), 2 * fx.result.largest_size);
}

TEST(Manifest, TopNClassesAppear) {
  ManifestFixture fx(3);
  const auto m = build_manifest(fx.index, fx.result);
  std::map<std::string, std::uint64_t> per_class;
  for (const auto& e : m.entries) per_class[e.partition] += e.records;
  EXPECT_GT(per_class.count("c0"), 0u);
  EXPECT_EQ(per_class.count("unknown"), 0u);
}

TEST(Manifest, SaveLoadRoundTrip) {
  ManifestFixture fx(1);
  const auto m = build_manifest(fx.index, fx.result);
  const std::string path = fx.dir.file("manifest.tsv");
  save_manifest(m, path);
  const auto loaded = load_manifest(path);
  EXPECT_EQ(loaded.dataset, m.dataset);
  EXPECT_EQ(loaded.k, m.k);
  EXPECT_EQ(loaded.num_reads, m.num_reads);
  EXPECT_EQ(loaded.num_components, m.num_components);
  EXPECT_EQ(loaded.largest_size, m.largest_size);
  ASSERT_EQ(loaded.entries.size(), m.entries.size());
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    EXPECT_EQ(loaded.entries[i].path, m.entries[i].path);
    EXPECT_EQ(loaded.entries[i].partition, m.entries[i].partition);
    EXPECT_EQ(loaded.entries[i].records, m.entries[i].records);
    EXPECT_EQ(loaded.entries[i].bases, m.entries[i].bases);
  }
}

TEST(Manifest, LoadMissingFileThrows) {
  EXPECT_THROW(load_manifest("/nonexistent/m.tsv"), std::runtime_error);
}

/// Clobber the first record separator ('+' at line start) of @p path in
/// place, keeping the byte length unchanged.
void corrupt_first_separator(const std::string& path) {
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
  }
  std::size_t pos = 0;
  while (pos < bytes.size() &&
         !(bytes[pos] == '+' && (pos == 0 || bytes[pos - 1] == '\n'))) {
    ++pos;
  }
  ASSERT_LT(pos, bytes.size());
  bytes[pos] = 'J';
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Regression for the always-strict re-parse: build_manifest used to ignore
// the run's ParseMode, so verifying a lenient run's (or operator-damaged)
// output threw instead of counting the skip.
TEST(Manifest, ParseModeThreadsThroughToVerification) {
  ManifestFixture fx(1);
  ASSERT_FALSE(fx.result.output_files.empty());
  const std::string& victim = fx.result.output_files.front();
  corrupt_first_separator(victim);

  // Strict (the default) refuses the damaged file with a typed parse error.
  try {
    (void)build_manifest(fx.index, fx.result);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kParse);
    EXPECT_EQ(e.path(), victim);
  }

  // Lenient counts the resync on the damaged entry and completes.
  const auto m = build_manifest(fx.index, fx.result, io::ParseMode::kLenient);
  EXPECT_EQ(m.records_skipped, 1u);
  EXPECT_EQ(m.total_records(), 2ull * fx.result.num_reads - 1);
  for (const auto& e : m.entries) {
    EXPECT_EQ(e.skipped, e.path == victim ? 1u : 0u) << e.path;
  }

  // The skipped column survives a save/load round trip.
  const std::string path = fx.dir.file("manifest.tsv");
  save_manifest(m, path);
  const auto loaded = load_manifest(path);
  EXPECT_EQ(loaded.records_skipped, 1u);
  ASSERT_EQ(loaded.entries.size(), m.entries.size());
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    EXPECT_EQ(loaded.entries[i].skipped, m.entries[i].skipped);
  }
}

}  // namespace
}  // namespace metaprep::core
