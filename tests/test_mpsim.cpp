// Tests for the message-passing substrate (MPI stand-in).
#include "mpsim/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "check/check.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace metaprep::mpsim {
namespace {

TEST(World, RejectsNonPositiveRanks) {
  EXPECT_THROW(World(0), std::invalid_argument);
}

TEST(World, RunInvokesEveryRankOnce) {
  for (int p : {1, 2, 5, 8}) {
    World world(p);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(p));
    world.run([&](Comm& comm) {
      EXPECT_EQ(comm.size(), p);
      hits[static_cast<std::size_t>(comm.rank())].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Comm, PointToPointDeliversPayload) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint32_t> data{1, 2, 3, 4};
      comm.send(1, 7, data.data(), data.size() * 4);
    } else {
      std::vector<std::uint32_t> data(4);
      comm.recv(0, 7, data.data(), 16);
      EXPECT_EQ(data, (std::vector<std::uint32_t>{1, 2, 3, 4}));
    }
  });
}

TEST(Comm, TagsKeepStreamsSeparate) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      int a = 111, b = 222;
      comm.send(1, 2, &b, sizeof(b));  // send tag 2 first
      comm.send(1, 1, &a, sizeof(a));
    } else {
      int a = 0, b = 0;
      comm.recv(0, 1, &a, sizeof(a));  // receive tag 1 first
      comm.recv(0, 2, &b, sizeof(b));
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    }
  });
}

TEST(Comm, MessagesWithSameTagPreserveFifoOrder) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(1, 3, &i, sizeof(i));
    } else {
      for (int i = 0; i < 10; ++i) {
        int got = -1;
        comm.recv(0, 3, &got, sizeof(got));
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(Comm, SizeMismatchThrows) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      int x = 1;
      comm.send(1, 1, &x, sizeof(x));
    } else {
      std::uint64_t y;
      comm.recv(0, 1, &y, sizeof(y));  // expects 8, sent 4
    }
  }),
               std::runtime_error);
}

TEST(Comm, SelfSendWorks) {
  World world(1);
  world.run([&](Comm& comm) {
    int x = 5;
    comm.send(0, 1, &x, sizeof(x));
    int y = 0;
    comm.recv(0, 1, &y, sizeof(y));
    EXPECT_EQ(y, 5);
  });
}

TEST(Comm, BarrierOrdersSideEffects) {
  World world(4);
  std::atomic<int> before{0};
  std::vector<int> seen(4, -1);
  world.run([&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    seen[static_cast<std::size_t>(comm.rank())] = before.load();
  });
  for (int v : seen) EXPECT_EQ(v, 4);
}

TEST(Comm, BroadcastFromEachRoot) {
  for (int root = 0; root < 3; ++root) {
    World world(3);
    world.run([&](Comm& comm) {
      std::uint64_t value = comm.rank() == root ? 0xDEADBEEF : 0;
      comm.broadcast(&value, sizeof(value), root);
      EXPECT_EQ(value, 0xDEADBEEFu);
    });
  }
}

TEST(Comm, GatherCollectsRankMajor) {
  for (int root : {0, 2}) {
    World world(4);
    world.run([&](Comm& comm) {
      const std::uint32_t mine = static_cast<std::uint32_t>(comm.rank()) * 11;
      std::vector<std::uint32_t> all(4, 0xFFFFFFFFu);
      comm.gather(&mine, sizeof(mine), comm.rank() == root ? all.data() : nullptr, root);
      if (comm.rank() == root) {
        EXPECT_EQ(all, (std::vector<std::uint32_t>{0, 11, 22, 33}));
      }
    });
  }
}

TEST(Comm, ScattervDeliversSlicesIncludingOverlaps) {
  // Label scatter in the pipeline ships overlapping slices (paired-end read
  // ranges straddle rank boundaries); scatterv must not assume disjointness.
  World world(3);
  const std::vector<std::uint32_t> source{10, 11, 12, 13, 14, 15, 16, 17};
  const std::vector<std::uint64_t> offsets{0, 8, 20};    // bytes: words [0,4), [2,6), [5,8)
  const std::vector<std::uint64_t> lengths{16, 16, 12};  // ranks 0/1 and 1/2 overlap
  world.run([&](Comm& comm) {
    const int p = comm.rank();
    std::vector<std::uint32_t> slice(lengths[static_cast<std::size_t>(p)] / 4);
    comm.scatterv(p == 0 ? source.data() : nullptr, offsets, lengths, slice.data(), 0);
    if (p == 0) { EXPECT_EQ(slice, (std::vector<std::uint32_t>{10, 11, 12, 13})); }
    if (p == 1) { EXPECT_EQ(slice, (std::vector<std::uint32_t>{12, 13, 14, 15})); }
    if (p == 2) { EXPECT_EQ(slice, (std::vector<std::uint32_t>{15, 16, 17})); }
  });
}

TEST(Comm, ScattervZeroLengthSliceShipsNothing) {
  World world(3);
  const std::vector<std::uint32_t> source{1, 2, 3};
  const std::vector<std::uint64_t> offsets{0, 0, 4};
  const std::vector<std::uint64_t> lengths{4, 0, 8};
  world.run([&](Comm& comm) {
    const int p = comm.rank();
    std::vector<std::uint32_t> slice(2, 0xAAAAAAAAu);
    comm.scatterv(p == 0 ? source.data() : nullptr, offsets, lengths,
                  p == 1 ? nullptr : slice.data(), 0);
    if (p == 0) { EXPECT_EQ(slice[0], 1u); }
    if (p == 2) { EXPECT_EQ(slice, (std::vector<std::uint32_t>{2, 3})); }
  });
  // Only rank 2's 8 bytes crossed ranks (rank 0 keeps its slice local,
  // rank 1 shipped nothing).
  EXPECT_EQ(world.total_traffic_bytes(), 8u);
}

TEST(Comm, ScattervRejectsBadGeometryArrays) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    const std::vector<std::uint64_t> offsets{0};  // one entry, P == 2
    const std::vector<std::uint64_t> lengths{0};
    std::uint32_t dummy = 0;
    comm.scatterv(&dummy, offsets, lengths, &dummy, 0);
  }),
               std::runtime_error);
}

TEST(Comm, AllreduceSumAcrossRanks) {
  for (int p : {1, 2, 5, 8}) {
    World world(p);
    world.run([&](Comm& comm) {
      const auto v = static_cast<std::uint64_t>(comm.rank() + 1);
      const std::uint64_t total = comm.allreduce_sum(v);
      EXPECT_EQ(total, static_cast<std::uint64_t>(p) * (p + 1) / 2);
    });
  }
}

TEST(Comm, CollectivesComposeWithP2P) {
  // Interleave a gather with tagged point-to-point traffic to check tag
  // isolation of the internal collective tags.
  World world(3);
  world.run([&](Comm& comm) {
    const int me = comm.rank();
    if (me == 0) {
      int x = 99;
      comm.send(1, 5, &x, sizeof(x));
    }
    std::uint64_t v = 7;
    EXPECT_EQ(comm.allreduce_sum(v), 21u);
    if (me == 1) {
      int x = 0;
      comm.recv(0, 5, &x, sizeof(x));
      EXPECT_EQ(x, 99);
    }
  });
}

TEST(Comm, ExceptionInOneRankPoisonsBlockedRanks) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      throw std::runtime_error("rank 0 died");
    } else {
      int x;
      comm.recv(0, 9, &x, sizeof(x));  // would block forever without poison
    }
  }),
               std::runtime_error);
  // The world is reusable after a failure.
  world.run([&](Comm&) {});
}

class AlltoallTest : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallTest, StagedAlltoallMatchesReference) {
  const int P = GetParam();
  // Deterministic random block sizes per (src, dest).
  util::Xoshiro256 rng(99 + static_cast<std::uint64_t>(P));
  std::vector<std::vector<std::uint64_t>> block(static_cast<std::size_t>(P),
                                                std::vector<std::uint64_t>(static_cast<std::size_t>(P)));
  for (auto& row : block) {
    for (auto& v : row) v = rng.next_below(50);
  }

  World world(P);
  world.run([&](Comm& comm) {
    const int me = comm.rank();
    // Send buffer: block for dest d is filled with value me*1000+d.
    std::vector<std::uint64_t> send_offsets(static_cast<std::size_t>(P) + 1, 0);
    for (int d = 0; d < P; ++d) {
      send_offsets[static_cast<std::size_t>(d) + 1] =
          send_offsets[static_cast<std::size_t>(d)] +
          block[static_cast<std::size_t>(me)][static_cast<std::size_t>(d)] * 4;
    }
    std::vector<std::uint32_t> sendbuf(send_offsets.back() / 4);
    for (int d = 0; d < P; ++d) {
      for (std::uint64_t i = send_offsets[static_cast<std::size_t>(d)] / 4;
           i < send_offsets[static_cast<std::size_t>(d) + 1] / 4; ++i) {
        sendbuf[i] = static_cast<std::uint32_t>(me * 1000 + d);
      }
    }
    std::vector<std::uint64_t> recv_offsets(static_cast<std::size_t>(P) + 1, 0);
    for (int s = 0; s < P; ++s) {
      recv_offsets[static_cast<std::size_t>(s) + 1] =
          recv_offsets[static_cast<std::size_t>(s)] +
          block[static_cast<std::size_t>(s)][static_cast<std::size_t>(me)] * 4;
    }
    std::vector<std::uint32_t> recvbuf(recv_offsets.back() / 4);
    comm.alltoallv_staged(sendbuf.data(), send_offsets, recvbuf.data(), recv_offsets, 500);
    for (int s = 0; s < P; ++s) {
      for (std::uint64_t i = recv_offsets[static_cast<std::size_t>(s)] / 4;
           i < recv_offsets[static_cast<std::size_t>(s) + 1] / 4; ++i) {
        EXPECT_EQ(recvbuf[i], static_cast<std::uint32_t>(s * 1000 + me));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AlltoallTest, ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Comm, AlltoallRejectsBadOffsetArrays) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    std::vector<std::uint64_t> bad{0, 0};  // needs P+1 = 3 entries
    comm.alltoallv_staged(nullptr, bad, nullptr, bad, 1);
  }),
               std::invalid_argument);
}

TEST(CostModel, ChargesLatencyPlusBandwidth) {
  CostModelParams params;
  params.latency_s = 1e-3;
  params.link_bandwidth_Bps = 1e6;  // 1 MB/s for easy math
  World world(2, params);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> megabyte(1'000'000);
      comm.send(1, 1, megabyte.data(), megabyte.size());
    } else {
      std::vector<char> buf(1'000'000);
      comm.recv(0, 1, buf.data(), buf.size());
    }
  });
  // 1 MB at 1 MB/s + 1 ms latency ~= 1.001 s charged to rank 1.
  EXPECT_NEAR(world.simulated_comm_seconds(1), 1.001, 1e-9);
  EXPECT_DOUBLE_EQ(world.simulated_comm_seconds(0), 0.0);
  EXPECT_NEAR(world.max_simulated_comm_seconds(), 1.001, 1e-9);
  world.reset_cost_model();
  EXPECT_DOUBLE_EQ(world.max_simulated_comm_seconds(), 0.0);
}

class RandomTrafficTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTrafficTest, FuzzedScheduleDeliversEveryPayloadIntact) {
  // Deterministic random message schedule: every rank knows the full plan,
  // sends its outgoing messages in its own order, and receives the ones
  // addressed to it in (src, seq) order.  Payload contents are derived from
  // (src, dst, seq) so corruption or mixups are detectable.
  const int P = GetParam();
  struct Msg {
    int src, dst, tag;
    std::size_t size;
  };
  util::Xoshiro256 rng(7000 + static_cast<std::uint64_t>(P));
  std::vector<Msg> plan;
  for (int i = 0; i < 200; ++i) {
    Msg m;
    m.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
    m.dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
    m.tag = 10'000 + i;  // unique tag per message keeps matching exact
    m.size = 1 + rng.next_below(2000);
    plan.push_back(m);
  }
  auto fill = [](std::vector<std::uint8_t>& buf, const Msg& m) {
    for (std::size_t j = 0; j < buf.size(); ++j) {
      buf[j] = static_cast<std::uint8_t>((m.src * 131 + m.dst * 17 + m.tag + j) & 0xFF);
    }
  };

  World world(P);
  world.run([&](Comm& comm) {
    const int me = comm.rank();
    // Send phase: everything this rank originates (buffered, non-blocking).
    for (const auto& m : plan) {
      if (m.src != me) continue;
      std::vector<std::uint8_t> buf(m.size);
      fill(buf, m);
      comm.send(m.dst, m.tag, buf.data(), buf.size());
    }
    // Receive phase: everything addressed to this rank.
    for (const auto& m : plan) {
      if (m.dst != me) continue;
      std::vector<std::uint8_t> got(m.size);
      comm.recv(m.src, m.tag, got.data(), got.size());
      std::vector<std::uint8_t> expected(m.size);
      fill(expected, m);
      ASSERT_EQ(got, expected) << "src=" << m.src << " tag=" << m.tag;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RandomTrafficTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(Traffic, MatrixAccountsForEveryCrossRankByte) {
  World world(3);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> buf(100);
      comm.send(1, 1, buf.data(), 100);
      comm.send(2, 1, buf.data(), 50);
      comm.send(0, 1, buf.data(), 25);  // self-send: not counted
      comm.recv(0, 1, buf.data(), 25);
    } else {
      std::vector<char> buf(100);
      comm.recv(0, 1, buf.data(), comm.rank() == 1 ? 100 : 50);
    }
  });
  const auto m = world.traffic_matrix();
  EXPECT_EQ(m[0 * 3 + 1], 100u);
  EXPECT_EQ(m[0 * 3 + 2], 50u);
  EXPECT_EQ(m[0 * 3 + 0], 0u);
  EXPECT_EQ(world.total_traffic_bytes(), 150u);
  EXPECT_EQ(world.message_count(), 2u);
  world.reset_cost_model();
  EXPECT_EQ(world.total_traffic_bytes(), 0u);
  EXPECT_EQ(world.message_count(), 0u);
}

TEST(CostModel, SelfSendsAreFree) {
  World world(1);
  world.run([&](Comm& comm) {
    std::vector<char> buf(1000);
    comm.send(0, 1, buf.data(), buf.size());
    comm.recv(0, 1, buf.data(), buf.size());
  });
  EXPECT_DOUBLE_EQ(world.max_simulated_comm_seconds(), 0.0);
}

TEST(Async, IsendWaitAllPreservesPerPairOrder) {
  // Messages from one rank to one (dest, tag) mailbox key must arrive in
  // posting order; waiting the matching irecvs in posting order must observe
  // exactly that sequence.
  World world(2);
  world.run([&](Comm& comm) {
    constexpr int kN = 32;
    if (comm.rank() == 0) {
      std::vector<Request> sends;
      for (int i = 0; i < kN; ++i) {
        const std::uint32_t v = 1000u + static_cast<std::uint32_t>(i);
        Request r = comm.isend(1, 3, &v, sizeof(v));
        EXPECT_TRUE(r.done());  // buffered: complete at post time
        sends.push_back(r);
      }
      comm.wait_all(sends);  // no-op, but must be legal
    } else {
      std::vector<std::uint32_t> got(kN, 0);
      std::vector<Request> recvs;
      recvs.reserve(kN);
      for (int i = 0; i < kN; ++i) recvs.push_back(comm.irecv(0, 3, &got[i], 4));
      comm.wait_all(recvs);
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], 1000u + static_cast<std::uint32_t>(i));
      }
      for (const auto& r : recvs) EXPECT_TRUE(r.done());
    }
  });
  EXPECT_EQ(world.async_inflight(), 0);
}

TEST(Async, IrecvPostedBeforeMatchingIsendExists) {
  // The receive side registers its expectation first, tells the sender via a
  // blocking handshake, and only then does the isend happen — so the irecv
  // is deterministically posted before any matching message exists.
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      int ready = 0;
      comm.recv(1, 1, &ready, sizeof(ready));
      EXPECT_EQ(ready, 1);
      const std::uint64_t payload = 0xC0FFEE;
      comm.isend(1, 2, &payload, sizeof(payload));
    } else {
      std::uint64_t got = 0;
      Request r = comm.irecv(0, 2, &got, sizeof(got));
      EXPECT_FALSE(r.done());
      EXPECT_GE(world.async_inflight(), 1);
      int ready = 1;
      comm.send(0, 1, &ready, sizeof(ready));
      comm.wait(r);
      EXPECT_TRUE(r.done());
      EXPECT_EQ(got, 0xC0FFEEu);
      // Unchecked mode tolerates re-waiting a completed request as a no-op;
      // checked mode flags it as a double wait (covered in test_check).
      if (!check::enabled()) comm.wait(r);
    }
  });
  EXPECT_EQ(world.async_inflight(), 0);
}

TEST(Async, WaitSizeMismatchThrows) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      int x = 1;
      comm.isend(1, 1, &x, sizeof(x));
    } else {
      std::uint64_t y = 0;
      Request r = comm.irecv(0, 1, &y, sizeof(y));  // expects 8, sent 4
      comm.wait(r);
    }
  }),
               std::runtime_error);
  EXPECT_EQ(world.async_inflight(), 0);
}

TEST(Async, DroppedDeliveriesRetransmitWithoutDuplicates) {
  // A fault-injected drop fires inside the sender's retry loop before the
  // mailbox enqueue, so retransmission can never double-deliver: the
  // world-wide message count must equal the number of cross-rank messages
  // exactly, and every payload must arrive intact and in order.
  util::FaultPlanConfig cfg;
  cfg.seed = 11;
  cfg.comm_drop_rate = 0.15;  // well below the 5-attempt retry budget
  util::ScopedFaultPlan scoped(cfg);

  constexpr int kN = 64;
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        const std::uint64_t v = 0xAB00u + static_cast<std::uint64_t>(i);
        comm.isend(1, 9, &v, sizeof(v));
      }
    } else {
      std::vector<std::uint64_t> got(kN, 0);
      std::vector<Request> recvs;
      for (int i = 0; i < kN; ++i) recvs.push_back(comm.irecv(0, 9, &got[i], 8));
      comm.wait_all(recvs);
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], 0xAB00u + static_cast<std::uint64_t>(i));
      }
    }
  });
  EXPECT_GT(util::FaultPlan::global().counters().comm_drops, 0u);
  EXPECT_EQ(world.message_count(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(world.async_inflight(), 0);
}

class AsyncAlltoallTest : public ::testing::TestWithParam<int> {};

TEST_P(AsyncAlltoallTest, StagedAsyncMatchesBlockingAlltoall) {
  // ialltoallv_staged + wait_all must land every block at the same offsets
  // as the blocking alltoallv_staged, for the same send buffers.
  const int P = GetParam();
  util::Xoshiro256 rng(123 + static_cast<std::uint64_t>(P));
  std::vector<std::vector<std::uint64_t>> block(
      static_cast<std::size_t>(P), std::vector<std::uint64_t>(static_cast<std::size_t>(P)));
  for (auto& row : block) {
    for (auto& v : row) v = rng.next_below(40);  // 0 sizes included
  }

  World world(P);
  world.run([&](Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint64_t> send_offsets(static_cast<std::size_t>(P) + 1, 0);
    for (int d = 0; d < P; ++d) {
      send_offsets[static_cast<std::size_t>(d) + 1] =
          send_offsets[static_cast<std::size_t>(d)] +
          block[static_cast<std::size_t>(me)][static_cast<std::size_t>(d)] * 8;
    }
    std::vector<std::uint64_t> sendbuf(send_offsets.back() / 8);
    for (int d = 0; d < P; ++d) {
      for (std::uint64_t i = send_offsets[static_cast<std::size_t>(d)] / 8;
           i < send_offsets[static_cast<std::size_t>(d) + 1] / 8; ++i) {
        sendbuf[i] = static_cast<std::uint64_t>(me) * 1'000'000 + i;
      }
    }
    std::vector<std::uint64_t> recv_offsets(static_cast<std::size_t>(P) + 1, 0);
    for (int s = 0; s < P; ++s) {
      recv_offsets[static_cast<std::size_t>(s) + 1] =
          recv_offsets[static_cast<std::size_t>(s)] +
          block[static_cast<std::size_t>(s)][static_cast<std::size_t>(me)] * 8;
    }
    std::vector<std::uint64_t> blocking(recv_offsets.back() / 8, 0);
    comm.alltoallv_staged(sendbuf.data(), send_offsets, blocking.data(), recv_offsets, 600);

    std::vector<std::uint64_t> async(recv_offsets.back() / 8, 0);
    auto pending =
        comm.ialltoallv_staged(sendbuf.data(), send_offsets, async.data(), recv_offsets, 700);
    comm.wait_all(pending);
    EXPECT_EQ(async, blocking);
  });
  EXPECT_EQ(world.async_inflight(), 0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AsyncAlltoallTest, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace metaprep::mpsim
