#include "util/thread_team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace metaprep::util {
namespace {

TEST(SplitRange, CoversAndBalances) {
  const auto b = split_range(10, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 10u);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GE(b[i], b[i - 1]);
    EXPECT_LE(b[i] - b[i - 1], 4u);
  }
}

TEST(SplitRange, MorePartsThanElements) {
  const auto b = split_range(2, 5);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b.back(), 2u);
  std::size_t nonempty = 0;
  for (std::size_t i = 1; i < b.size(); ++i) {
    if (b[i] > b[i - 1]) ++nonempty;
  }
  EXPECT_EQ(nonempty, 2u);
}

TEST(SplitRange, EmptyRange) {
  const auto b = split_range(0, 4);
  for (auto v : b) EXPECT_EQ(v, 0u);
}

TEST(ThreadTeam, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadTeam(0), std::invalid_argument);
  EXPECT_THROW(ThreadTeam(-1), std::invalid_argument);
}

TEST(ThreadTeam, EveryTidRunsExactlyOnce) {
  for (int t : {1, 2, 4, 7}) {
    ThreadTeam team(t);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(t));
    team.run([&](int tid) { hits[static_cast<std::size_t>(tid)].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadTeam, ReusableAcrossManyRegions) {
  ThreadTeam team(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) {
    team.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

// Regression pinned by the thread-safety-annotation audit: workers used to
// re-read the guarded job_ field after dropping the team mutex, so a worker
// finishing late could race the leader publishing the *next* region's
// function.  execute() now takes the function pointer copied under the lock.
// Back-to-back regions with distinct closures make a stale read visible as a
// wrong-region write; the TSan tier-1 leg sees the race itself.
TEST(ThreadTeam, BackToBackRegionsNeverRunAStaleJob) {
  ThreadTeam team(4);
  std::vector<std::atomic<int>> region_of_tid(4);
  for (auto& r : region_of_tid) r.store(-1);
  for (int region = 0; region < 2'000; ++region) {
    team.run([&, region](int tid) {
      region_of_tid[static_cast<std::size_t>(tid)].store(region,
                                                         std::memory_order_relaxed);
    });
    for (auto& r : region_of_tid) {
      ASSERT_EQ(r.load(std::memory_order_relaxed), region);
    }
  }
}

TEST(ThreadTeam, BarrierSynchronizesPhases) {
  ThreadTeam team(4);
  std::atomic<int> phase1{0};
  std::vector<int> observed(4, -1);
  team.run([&](int tid) {
    phase1.fetch_add(1);
    team.arrive_and_wait();
    // After the barrier every thread must see all 4 phase-1 increments.
    observed[static_cast<std::size_t>(tid)] = phase1.load();
  });
  for (int v : observed) EXPECT_EQ(v, 4);
}

TEST(ThreadTeam, RepeatedBarriersDoNotDeadlock) {
  ThreadTeam team(3);
  std::atomic<int> counter{0};
  team.run([&](int) {
    for (int i = 0; i < 20; ++i) {
      counter.fetch_add(1);
      team.arrive_and_wait();
    }
  });
  EXPECT_EQ(counter.load(), 60);
}

TEST(ThreadTeam, ExceptionPropagatesToCaller) {
  ThreadTeam team(4);
  EXPECT_THROW(
      team.run([&](int tid) {
        if (tid == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Team still usable afterwards.
  std::atomic<int> total{0};
  team.run([&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  ThreadTeam team(1);
  int value = 0;
  team.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  ThreadTeam team(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(team, 0, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HonorsBeginOffsetAndEmptyRange) {
  ThreadTeam team(3);
  std::atomic<int> count{0};
  parallel_for(team, 10, 20, [&](std::size_t i) {
    EXPECT_GE(i, 10u);
    EXPECT_LT(i, 20u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 10);
  parallel_for(team, 5, 5, [&](std::size_t) { FAIL() << "empty range must not call body"; });
}

}  // namespace
}  // namespace metaprep::util
