// Seeded violation: the NOLINT suppresses its rule, but the mandatory
// ": <why>" justification is missing — exactly one finding should remain
// (metaprep-nolint-justified), not two.
int* make_seven() {
  return new int(7);  // NOLINT(metaprep-no-naked-new)
}
