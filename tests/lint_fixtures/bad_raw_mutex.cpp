// Seeded violations: raw std synchronization primitives outside util/sync.hpp.
#include <mutex>

std::mutex g_lock;  // expect metaprep-no-raw-mutex @4

void critical() {
  std::lock_guard<std::mutex> lock(g_lock);  // expect metaprep-no-raw-mutex @7
}
