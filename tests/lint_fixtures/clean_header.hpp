#pragma once
// Clean header: the mutex guards named members, so metaprep-lock-unannotated
// stays quiet; no other rule has anything to say.  Expected findings: none.

namespace demo {

/// Properly annotated lock state.
class Guarded {
 public:
  int get() const;

 private:
  mutable util::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace demo
