// Seeded violation: ad-hoc std::runtime_error outside the error taxonomy.
#include <stdexcept>

void fail_badly() {
  throw std::runtime_error("boom");  // expect metaprep-no-adhoc-throw @5
}
