#pragma once
// Seeded violation: a class with a util::Mutex member but no member marked
// GUARDED_BY anything — the lock guards nothing the analysis can see.

namespace demo {

class Cache {
 public:
  void put(int key, int value);
  int hits() const;

 private:
  mutable util::Mutex mutex_;  // expect metaprep-lock-unannotated @13
  int hits_ = 0;
  int misses_ = 0;
};

}  // namespace demo
