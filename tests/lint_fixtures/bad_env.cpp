// Seeded violation: getenv outside the blessed env layer (util/env.hpp).
#include <cstdlib>

const char* log_level() {
  return std::getenv("DEMO_LOG");  // expect metaprep-no-env-outside-config @5
}
