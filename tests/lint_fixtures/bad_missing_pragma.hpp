// Seeded violation: header without #pragma once (expect metaprep-pragma-once @1).
inline int nine() { return 9; }
