// Clean file: every rule-looking pattern below sits in a context the lexer
// must ignore (comment, string, char, raw string), or carries a justified
// suppression.  Expected findings: none.
#include <cstdint>
#include <string>

namespace demo {

// Comment text is not code: throw std::runtime_error("nope") must not fire,
// and neither must std::mutex or getenv("HOME") in prose.

inline std::string rule_text() {
  // String literal contents are not code either.
  std::string s = "throw std::runtime_error(\"boom\")";
  s += "std::mutex inside a string";
  s += "getenv(\"HOME\")";
  return s;
}

inline std::string raw_rule_text() {
  // Raw strings too, including multi-line ones with custom delimiters.
  return R"lint(
    throw std::runtime_error("boom");
    std::lock_guard<std::mutex> lock(m);
    // NOLINT(metaprep-no-raw-mutex)   <- inert: inside a raw string
  )lint";
}

inline std::uint64_t separators() {
  const std::uint64_t big = 1'000'000;  // digit separators are not char literals
  const char quote = '"';               // and a quoted quote opens no string
  return big + static_cast<std::uint64_t>(quote);
}

// NOLINT(metaprep-no-naked-new): previous-line suppression with justification
inline int* suppressed_prev_line() { return new int(1); }

inline int* suppressed_same_line() {
  return new int(2);  // NOLINT(metaprep-no-naked-new): same-line suppression
}

// NOLINTNEXTLINE(metaprep-no-naked-new): the next-line-only marker form
inline int* suppressed_nextline() { return new int(3); }

}  // namespace demo
