// Seeded violation: naked new outside a smart-pointer factory.
struct Widget {
  int x = 0;
};

Widget* make_widget() {
  return new Widget();  // expect metaprep-no-naked-new @7
}
