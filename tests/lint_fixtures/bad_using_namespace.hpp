#pragma once
// Seeded violation: file-scope using-directive in a header.
#include <vector>

using namespace std;  // expect metaprep-no-using-namespace-header @5

inline vector<int> empty_vec() { return {}; }
