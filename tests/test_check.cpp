// Seeded-violation tests for the correctness-tooling layer (src/check).
//
// Every scenario plants a real protocol/invariant bug and asserts the
// checker's *structured* report — kind, ranks, sites, counts — not merely
// that something threw.  A clean-run negative control proves the checker
// stays silent on correct programs.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.hpp"
#include "dsu/dsu.hpp"
#include "mpsim/comm.hpp"
#include "util/buffer_pool.hpp"

namespace metaprep {
namespace {

using check::CheckError;
using check::CheckReport;
using check::ScopedCheckEnable;
using check::ViolationKind;
using mpsim::Comm;
using mpsim::World;

#if !METAPREP_CHECKED

TEST(Check, CompiledOut) {
  GTEST_SKIP() << "METAPREP_CHECKED=0: verification hooks compiled out";
}

#else

/// Run fn and return the CheckReport it must raise.
template <typename Fn>
CheckReport expect_check_error(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
  } catch (const CheckError& e) {
    return e.report();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected CheckError, got: " << e.what();
    return {};
  }
  ADD_FAILURE() << "expected CheckError, got clean completion";
  return {};
}

TEST(Check, RuntimeGateDefaultsOff) {
  if (check::enabled()) GTEST_SKIP() << "METAPREP_CHECK set in this environment";
  World world(2);  // constructed without a checker
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::uint64_t x = 1;
      comm.send(1, 5, &x, sizeof(x));
      // No matching recv on rank 1: without the runtime gate this must stay
      // permissive (seed behavior), not raise an unmatched-send report.
    }
  });
}

TEST(Check, ScopedEnableTogglesTheGate) {
  const bool ambient = check::enabled();
  {
    ScopedCheckEnable on;
    EXPECT_TRUE(check::enabled());
  }
  EXPECT_EQ(check::enabled(), ambient);
}

// --- seeded scenario 1: send with no matching recv ----------------------
TEST(Check, UnmatchedSendIsReportedWithRanksAndTag) {
  ScopedCheckEnable on;
  World world(2);
  const CheckReport report = expect_check_error([&] {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        const std::uint64_t payload[2] = {7, 9};
        comm.send(1, 33, payload, sizeof(payload));
        comm.send(1, 33, payload, sizeof(payload));  // two strays, same stream
      }
    });
  });
  ASSERT_EQ(report.count(ViolationKind::kUnmatchedSend), 1u);
  const check::Violation* v = report.first(ViolationKind::kUnmatchedSend);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->src, 0);
  EXPECT_EQ(v->dst, 1);
  EXPECT_EQ(v->tag, 33);
  EXPECT_EQ(v->count, 2u);
  EXPECT_EQ(v->bytes, 32u);
}

// --- seeded scenario 2: two-rank circular wait --------------------------
TEST(Check, TwoRankCircularWaitReportsDeadlockCycleWithBlockedTrace) {
  ScopedCheckEnable on;
  World world(2);
  const CheckReport report = expect_check_error([&] {
    world.run([](Comm& comm) {
      // Each rank blocks receiving from the other; nobody ever sends.
      std::uint64_t x = 0;
      comm.recv(1 - comm.rank(), 4, &x, sizeof(x));
    });
  });
  ASSERT_EQ(report.count(ViolationKind::kDeadlock), 1u);
  const check::Violation* v = report.first(ViolationKind::kDeadlock);
  ASSERT_NE(v, nullptr);
  // The cycle names both ranks...
  std::vector<int> cycle = v->ranks;
  std::sort(cycle.begin(), cycle.end());
  EXPECT_EQ(cycle, (std::vector<int>{0, 1}));
  // ...and the blocked-op trace says what each was stuck on.
  ASSERT_EQ(v->blocked.size(), 2u);
  for (const check::BlockedOp& op : v->blocked) {
    EXPECT_EQ(op.op, "recv");
    EXPECT_EQ(op.peer, 1 - op.rank);
    EXPECT_EQ(op.tag, 4);
  }
}

TEST(Check, BarrierVersusRecvDeadlockIsDetected) {
  ScopedCheckEnable on;
  World world(2);
  const CheckReport report = expect_check_error([&] {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.barrier();  // waits for rank 1, which waits for rank 0's send
      } else {
        std::uint64_t x = 0;
        comm.recv(0, 9, &x, sizeof(x));
      }
    });
  });
  const check::Violation* v = report.first(ViolationKind::kDeadlock);
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->blocked.size(), 2u);
  bool saw_barrier = false, saw_recv = false;
  for (const check::BlockedOp& op : v->blocked) {
    if (op.op == "barrier") saw_barrier = true;
    if (op.op == "recv") saw_recv = true;
  }
  EXPECT_TRUE(saw_barrier);
  EXPECT_TRUE(saw_recv);
}

// --- double wait / out-of-order wait ------------------------------------
TEST(Check, DoubleWaitOnCompletedIrecvIsFlagged) {
  ScopedCheckEnable on;
  World world(2);
  const CheckReport report = expect_check_error([&] {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        const std::uint64_t x = 11;
        comm.send(1, 2, &x, sizeof(x));
      } else {
        std::uint64_t got = 0;
        mpsim::Request r = comm.irecv(0, 2, &got, sizeof(got));
        comm.wait(r);
        comm.wait(r);  // second completion of the same request
      }
    });
  });
  const check::Violation* v = report.first(ViolationKind::kDoubleWait);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->dst, 1);
  EXPECT_EQ(v->src, 0);
  EXPECT_EQ(v->tag, 2);
}

TEST(Check, WaitingSecondPostedIrecvFirstIsRecvReorder) {
  ScopedCheckEnable on;
  World world(2);
  const CheckReport report = expect_check_error([&] {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        const std::uint64_t a = 1, b = 2;
        comm.send(1, 7, &a, sizeof(a));
        comm.send(1, 7, &b, sizeof(b));
      } else {
        std::uint64_t first = 0, second = 0;
        mpsim::Request r1 = comm.irecv(0, 7, &first, sizeof(first));
        mpsim::Request r2 = comm.irecv(0, 7, &second, sizeof(second));
        comm.wait(r2);  // drift: completes before the earlier-posted r1
        comm.wait(r1);
      }
    });
  });
  const check::Violation* v = report.first(ViolationKind::kRecvReorder);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->dst, 1);
  EXPECT_EQ(v->src, 0);
  EXPECT_EQ(v->tag, 7);
  EXPECT_EQ(v->detail_a, 0u);  // expected posting index
  EXPECT_EQ(v->detail_b, 1u);  // completed posting index
}

TEST(Check, UnwaitedIrecvIsReportedAtEndOfRun) {
  ScopedCheckEnable on;
  World world(2);
  const CheckReport report = expect_check_error([&] {
    world.run([](Comm& comm) {
      if (comm.rank() == 1) {
        std::uint64_t got = 0;
        mpsim::Request r = comm.irecv(0, 3, &got, sizeof(got));
        (void)r;  // dropped without wait
      }
    });
  });
  const check::Violation* v = report.first(ViolationKind::kUnwaitedRequest);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->dst, 1);
  EXPECT_EQ(v->count, 1u);
}

// --- offset geometry -----------------------------------------------------
TEST(Check, NonMonotoneAlltoallOffsetsAreFlagged) {
  ScopedCheckEnable on;
  World world(2);
  const CheckReport report = expect_check_error([&] {
    world.run([](Comm& comm) {
      std::vector<std::uint64_t> buf(4, 0);
      const std::vector<std::uint64_t> bad_send{8, 0, 8};  // 8 > 0: overlap
      const std::vector<std::uint64_t> good_recv{0, 4, 8};
      comm.alltoallv_staged(buf.data(), bad_send, buf.data(), good_recv, 100);
    });
  });
  const check::Violation* v = report.first(ViolationKind::kOffsetOverlap);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->detail_a, 0u);  // first non-monotone index
  EXPECT_EQ(v->detail_b, 8u);  // the offending offset value
}

// --- seeded scenario 3: BufferPool lease returned twice -----------------
TEST(Check, BufferPoolDoubleReleaseIsFlagged) {
  ScopedCheckEnable on;
  util::BufferPool pool;
  auto buf = pool.acquire_u64(16);
  pool.release(std::move(buf));
  const CheckReport report = expect_check_error([&] {
    pool.release(std::move(buf));  // NOLINT(bugprone-use-after-move): the seeded bug
  });
  EXPECT_EQ(report.count(ViolationKind::kDoubleRelease), 1u);
}

TEST(Check, BufferPoolForeignReleaseIsFlagged) {
  ScopedCheckEnable on;
  util::BufferPool pool;
  std::vector<std::uint32_t> never_leased(8, 1);
  const CheckReport report = expect_check_error([&] {
    pool.release(std::move(never_leased));
  });
  EXPECT_EQ(report.count(ViolationKind::kForeignRelease), 1u);
}

TEST(Check, BufferPoolUseAfterReturnIsCaughtOnReuse) {
  ScopedCheckEnable on;
  util::BufferPool pool;
  auto buf = pool.acquire_u64(8);
  std::uint64_t* dangling = buf.data();
  pool.release(std::move(buf));
  dangling[3] = 42;  // write through a handle kept across the release
  const CheckReport report = expect_check_error([&] {
    auto again = pool.acquire_u64(8);
    (void)again;
  });
  EXPECT_EQ(report.count(ViolationKind::kUseAfterReturn), 1u);
}

TEST(Check, BufferPoolCleanLeaseCycleIsSilent) {
  ScopedCheckEnable on;
  util::BufferPool pool;
  for (int round = 0; round < 3; ++round) {
    auto a = pool.acquire_u64(64);
    auto b = pool.acquire_u32(32);
    for (auto& x : a) x = 5;
    for (auto& x : b) x = 6;
    pool.release(std::move(a));
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.buffers_held(), 2u);
}

// --- seeded scenario 4: DSU parent cycle --------------------------------
TEST(Check, SerialDsuInjectedParentCycleIsDetected) {
  dsu::SerialDSU d(6);
  d.unite(0, 1);
  d.verify_forest();  // healthy forest passes
  d.debug_set_parent(2, 3);
  d.debug_set_parent(3, 2);  // 2 <-> 3 cycle
  const CheckReport report = expect_check_error([&] { d.verify_forest("test forest"); });
  const check::Violation* v = report.first(ViolationKind::kDsuCycle);
  ASSERT_NE(v, nullptr);
  // The report names a node actually on the injected cycle.
  EXPECT_TRUE(v->detail_a == 2 || v->detail_a == 3);
}

TEST(Check, AtomicDsuInjectedParentCycleIsDetected) {
  dsu::AtomicDSU d(5);
  d.unite(0, 4);
  d.verify_forest();
  d.debug_set_parent(1, 2);
  d.debug_set_parent(2, 1);
  const CheckReport report = expect_check_error([&] { d.verify_forest(); });
  EXPECT_EQ(report.count(ViolationKind::kDsuCycle), 1u);
}

TEST(Check, DsuOutOfBoundsParentIsDetected) {
  dsu::SerialDSU d(4);
  d.debug_set_parent(1, 99);
  const CheckReport report = expect_check_error([&] { d.verify_forest(); });
  const check::Violation* v = report.first(ViolationKind::kDsuBounds);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->detail_a, 1u);
  EXPECT_EQ(v->detail_b, 99u);
}

TEST(Check, SizeConservationMismatchIsDetected) {
  check::verify_size_conservation(10, 10, "balanced");  // silent when equal
  const CheckReport report =
      expect_check_error([&] { check::verify_size_conservation(9, 10, "unbalanced"); });
  const check::Violation* v = report.first(ViolationKind::kSizeConservation);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->detail_a, 9u);
  EXPECT_EQ(v->detail_b, 10u);
}

// --- negative control ----------------------------------------------------
TEST(Check, CleanMessagingRunRaisesNothing) {
  ScopedCheckEnable on;
  World world(4);
  world.run([](Comm& comm) {
    const int P = comm.size();
    const int p = comm.rank();
    // Balanced point-to-point ring.
    std::uint64_t token = static_cast<std::uint64_t>(p);
    std::uint64_t got = 0;
    mpsim::Request r = comm.irecv((p + P - 1) % P, 1, &got, sizeof(got));
    comm.isend((p + 1) % P, 1, &token, sizeof(token));
    comm.wait(r);
    EXPECT_EQ(got, static_cast<std::uint64_t>((p + P - 1) % P));
    comm.barrier();
    // Staged all-to-all with monotone offsets.
    std::vector<std::uint64_t> sendbuf(static_cast<std::size_t>(P), 7);
    std::vector<std::uint64_t> recvbuf(static_cast<std::size_t>(P), 0);
    std::vector<std::uint64_t> offs(static_cast<std::size_t>(P) + 1);
    for (int q = 0; q <= P; ++q) offs[static_cast<std::size_t>(q)] = 8ull * q;
    comm.alltoallv_staged(sendbuf.data(), offs, recvbuf.data(), offs, 200);
    comm.barrier();
    const std::uint64_t total = comm.allreduce_sum(1);
    EXPECT_EQ(total, static_cast<std::uint64_t>(P));
  });
}

TEST(Check, ReportToStringNamesKindsAndRanks) {
  ScopedCheckEnable on;
  World world(2);
  const CheckReport report = expect_check_error([&] {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        const std::uint64_t x = 1;
        comm.send(1, 12, &x, sizeof(x));
      }
    });
  });
  const std::string text = report.to_string();
  EXPECT_NE(text.find("unmatched-send"), std::string::npos);
  EXPECT_NE(text.find("rank 1"), std::string::npos);
  EXPECT_NE(text.find("tag 12"), std::string::npos);
}

#endif  // METAPREP_CHECKED

}  // namespace
}  // namespace metaprep
