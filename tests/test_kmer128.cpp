// Tests for 128-bit k-mers (32 < k <= 63, the paper's §4.4 extension).
#include "kmer/kmer128.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "util/rng.hpp"

namespace metaprep::kmer {
namespace {

std::string random_dna(int len, util::Xoshiro256& rng) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (auto& c : s) c = base_char(static_cast<std::uint8_t>(rng.next_below(4)));
  return s;
}

std::string rc_ref(const std::string& s) {
  std::string out(s.rbegin(), s.rend());
  for (auto& c : out) c = base_char(complement_code(base_code(c)));
  return out;
}

TEST(Kmer128, MaskWidths) {
  EXPECT_EQ(kmer_mask128(16).hi, 0u);
  EXPECT_EQ(kmer_mask128(16).lo, (1ULL << 32) - 1);
  EXPECT_EQ(kmer_mask128(32).hi, 0u);
  EXPECT_EQ(kmer_mask128(32).lo, ~0ULL);
  EXPECT_EQ(kmer_mask128(33).hi, 0x3ULL);
  EXPECT_EQ(kmer_mask128(63).hi, (1ULL << 62) - 1);
}

TEST(Kmer128, PushBaseShiftsAcrossWords) {
  const Kmer128 mask = kmer_mask128(33);
  Kmer128 v{};
  // Push 33 bases: 'C' then 32 'A's; the C ends up as the top 2 bits.
  v = push_base128(v, 1, mask);
  for (int i = 0; i < 32; ++i) v = push_base128(v, 0, mask);
  EXPECT_EQ(v.hi, 1ULL);
  EXPECT_EQ(v.lo, 0ULL);
}

TEST(Kmer128, EncodeDecodeRoundTripFixed) {
  const std::string s(63, 'G');
  EXPECT_EQ(decode128(encode128(s), 63), s);
}

TEST(Kmer128, ComparisonMatchesLexOrder) {
  const std::string a(40, 'A');
  std::string b = a;
  b[0] = 'C';
  std::string c = a;
  c[39] = 'T';
  EXPECT_LT(encode128(a), encode128(c));
  EXPECT_LT(encode128(c), encode128(b));
}

class Kmer128PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Kmer128PropertyTest, EncodeDecodeRoundTripRandom) {
  const int k = GetParam();
  util::Xoshiro256 rng(600 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 40; ++i) {
    const std::string s = random_dna(k, rng);
    EXPECT_EQ(decode128(encode128(s), k), s);
  }
}

TEST_P(Kmer128PropertyTest, RevCompMatchesStringReference) {
  const int k = GetParam();
  util::Xoshiro256 rng(700 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 40; ++i) {
    const std::string s = random_dna(k, rng);
    EXPECT_EQ(decode128(revcomp128(encode128(s), k), k), rc_ref(s));
  }
}

TEST_P(Kmer128PropertyTest, RevCompIsAnInvolution) {
  const int k = GetParam();
  util::Xoshiro256 rng(800 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 40; ++i) {
    const Kmer128 v = encode128(random_dna(k, rng));
    EXPECT_EQ(revcomp128(revcomp128(v, k), k), v);
  }
}

TEST_P(Kmer128PropertyTest, CanonicalMatchesStringMin) {
  const int k = GetParam();
  util::Xoshiro256 rng(900 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 30; ++i) {
    const std::string s = random_dna(k, rng);
    const std::string canon = decode128(canonical128(encode128(s), k), k);
    EXPECT_EQ(canon, std::min(s, rc_ref(s)));
  }
}

TEST_P(Kmer128PropertyTest, PrefixBinMatchesStringPrefix) {
  const int k = GetParam();
  util::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(k));
  for (int m : {2, 4, 8}) {
    if (m > k) continue;
    for (int i = 0; i < 20; ++i) {
      const std::string s = random_dna(k, rng);
      const auto bin = prefix_bin128(encode128(s), k, m);
      EXPECT_EQ(bin, static_cast<std::uint32_t>(encode64(s.substr(0, static_cast<std::size_t>(m)))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VariousK, Kmer128PropertyTest,
                         ::testing::Values(8, 16, 31, 32, 33, 34, 40, 47, 48, 55, 62, 63));

TEST(Kmer128, PrefixStraddlesWordBoundary) {
  // k=33, m=8: shift = 50 (< 64), prefix straddles nothing; k=40, m=8:
  // shift = 64 exactly; k=63, m=16 would exceed uint32; use m=15: shift=96.
  util::Xoshiro256 rng(1100);
  const std::string s = random_dna(40, rng);
  EXPECT_EQ(prefix_bin128(encode128(s), 40, 8),
            static_cast<std::uint32_t>(encode64(s.substr(0, 8))));
  const std::string t = random_dna(36, rng);
  // k=36, m=4: shift = 64 boundary case.
  EXPECT_EQ(prefix_bin128(encode128(t), 36, 4),
            static_cast<std::uint32_t>(encode64(t.substr(0, 4))));
}

}  // namespace
}  // namespace metaprep::kmer
