// Tests for FASTQ I/O and binary index serialization.
#include "io/fastq.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "io/binary.hpp"
#include "io/fasta.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace metaprep::io {
namespace {

using test::TempDir;

std::string write_raw(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return path;
}

TEST(Fastq, WriteReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.file("a.fastq");
  {
    FastqWriter w(path);
    w.write("read1", "ACGT", "IIII");
    w.write("read2 extra tokens", "GGNTA", "ABCDE");
  }
  FastqReader r(path);
  FastqRecord rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.id, "read1");
  EXPECT_EQ(rec.seq, "ACGT");
  EXPECT_EQ(rec.qual, "IIII");
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.id, "read2 extra tokens");
  EXPECT_EQ(rec.seq, "GGNTA");
  ASSERT_FALSE(r.next(rec));
}

TEST(Fastq, OffsetTracksRecordBoundaries) {
  TempDir dir;
  const std::string path = dir.file("b.fastq");
  {
    FastqWriter w(path);
    w.write("x", "AAAA", "IIII");
    w.write("y", "CCCC", "IIII");
  }
  FastqReader r(path);
  FastqRecord rec;
  EXPECT_EQ(r.offset(), 0u);
  ASSERT_TRUE(r.next(rec));
  const std::uint64_t first_end = r.offset();
  // "@x\nAAAA\n+\nIIII\n" = 15 bytes.
  EXPECT_EQ(first_end, 15u);
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(r.offset(), file_size_bytes(path));
}

TEST(Fastq, WriterBytesMatchesFileSize) {
  TempDir dir;
  const std::string path = dir.file("c.fastq");
  std::uint64_t bytes = 0;
  {
    FastqWriter w(path);
    w.write("abc", "ACGTACGT", "IIIIIIII");
    bytes = w.bytes_written();
  }
  EXPECT_EQ(bytes, file_size_bytes(path));
}

TEST(Fastq, MissingFileThrows) {
  EXPECT_THROW(FastqReader("/nonexistent/definitely/not.fastq"), std::runtime_error);
}

TEST(Fastq, MalformedHeaderThrows) {
  TempDir dir;
  const std::string path = dir.file("bad.fastq");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not-a-header\nACGT\n+\nIIII\n", f);
    std::fclose(f);
  }
  FastqReader r(path);
  FastqRecord rec;
  EXPECT_THROW(r.next(rec), std::runtime_error);
}

TEST(Fastq, QualityLengthMismatchThrows) {
  TempDir dir;
  const std::string path = dir.file("bad2.fastq");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("@x\nACGT\n+\nII\n", f);
    std::fclose(f);
  }
  FastqReader r(path);
  FastqRecord rec;
  EXPECT_THROW(r.next(rec), std::runtime_error);
}

TEST(Fastq, TruncatedRecordThrows) {
  TempDir dir;
  const std::string path = dir.file("bad3.fastq");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("@x\nACGT\n", f);
    std::fclose(f);
  }
  FastqReader r(path);
  FastqRecord rec;
  EXPECT_THROW(r.next(rec), std::runtime_error);
}

TEST(Fastq, NoTrailingNewlineOffsetExact) {
  // The final line of real-world FASTQ files often lacks a trailing newline;
  // the reader's offset must not drift by the phantom '\n'.
  TempDir dir;
  const std::string path =
      write_raw(dir.file("g.fastq"), "@x\nAAAA\n+\nIIII\n@y\nCCCC\n+\nIIII");
  FastqReader r(path);
  FastqRecord rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(r.offset(), 15u);
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.id, "y");
  EXPECT_EQ(rec.qual, "IIII");
  EXPECT_EQ(r.offset(), file_size_bytes(path));  // 29, not 30
  EXPECT_FALSE(r.next(rec));
}

TEST(Fastq, CrLfLineEndingsParsedAndOffsetExact) {
  TempDir dir;
  const std::string path =
      write_raw(dir.file("h.fastq"), "@x\r\nACGT\r\n+\r\nIIII\r\n@y\r\nGGGG\r\n+\r\nIIII\r\n");
  FastqReader r(path);
  FastqRecord rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.id, "x");
  EXPECT_EQ(rec.seq, "ACGT");  // '\r' stripped, never fed to k-mer code
  EXPECT_EQ(rec.qual, "IIII");
  EXPECT_EQ(r.offset(), 19u);  // '\r' bytes still counted in the offset
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.seq, "GGGG");
  EXPECT_EQ(r.offset(), file_size_bytes(path));
}

TEST(Fastq, CrLfBufferParsing) {
  const std::string content = "@x\r\nACGT\r\n+\r\nIIII\r\n";
  std::vector<std::string> seqs;
  const auto stats = for_each_record_in_buffer(
      content, [&](std::string_view, std::string_view seq, std::string_view qual) {
        seqs.emplace_back(seq);
        EXPECT_EQ(qual, "IIII");
      });
  EXPECT_EQ(seqs, std::vector<std::string>{"ACGT"});
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.skipped, 0u);
}

// ---- Malformed-FASTQ corpus: strict mode raises typed errors naming the
// file and offset; lenient mode resynchronizes and counts the skip. ----

TEST(Fastq, MissingPlusStrictThrowsTypedError) {
  TempDir dir;
  const std::string path =
      write_raw(dir.file("noplus.fastq"), "@x\nACGT\nIIII\n@y\nGGGG\n+\nIIII\n");
  FastqReader r(path);
  FastqRecord rec;
  try {
    r.next(rec);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kParse);
    EXPECT_EQ(e.path(), path);
    EXPECT_TRUE(e.has_offset());
    EXPECT_EQ(e.offset(), 0u);  // the record that started at byte 0 is bad
  }
}

TEST(Fastq, MissingPlusLenientResyncs) {
  TempDir dir;
  const std::string path =
      write_raw(dir.file("noplus2.fastq"), "@x\nACGT\nIIII\n@y\nGGGG\n+\nIIII\n");
  FastqReader r(path, ParseOptions{ParseMode::kLenient, "", 0});
  FastqRecord rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.id, "y");
  EXPECT_FALSE(r.next(rec));
  EXPECT_EQ(r.records_skipped(), 1u);
}

TEST(Fastq, TruncatedRecordLenientCountsSkip) {
  TempDir dir;
  const std::string path = write_raw(dir.file("trunc.fastq"), "@x\nACGT\n+\nIIII\n@y\nGG");
  FastqReader r(path, ParseOptions{ParseMode::kLenient, "", 0});
  FastqRecord rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.id, "x");
  EXPECT_FALSE(r.next(rec));
  EXPECT_EQ(r.records_skipped(), 1u);
}

TEST(Fastq, BlankInteriorLineStrictThrowsLenientResyncs) {
  const std::string content = "@x\nACGT\n+\nIIII\n\n@y\nGGGG\n+\nIIII\n";
  TempDir dir;
  const std::string path = write_raw(dir.file("blank.fastq"), content);
  {
    FastqReader r(path);
    FastqRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_THROW(r.next(rec), util::Error);
  }
  {
    FastqReader r(path, ParseOptions{ParseMode::kLenient, "", 0});
    FastqRecord rec;
    ASSERT_TRUE(r.next(rec));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.id, "y");
    EXPECT_FALSE(r.next(rec));
    EXPECT_EQ(r.records_skipped(), 1u);
  }
}

TEST(Fastq, QualityLengthMismatchLenientResyncs) {
  TempDir dir;
  const std::string path =
      write_raw(dir.file("qlen.fastq"), "@x\nACGT\n+\nII\n@y\nGGGG\n+\nIIII\n");
  FastqReader r(path, ParseOptions{ParseMode::kLenient, "", 0});
  FastqRecord rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.id, "y");
  EXPECT_FALSE(r.next(rec));
  EXPECT_EQ(r.records_skipped(), 1u);
}

TEST(Fastq, BufferStrictErrorNamesFileAndOffset) {
  const std::string content = "@x\nACGT\nIIII\n";  // missing '+'
  try {
    for_each_record_in_buffer(
        content, [](std::string_view, std::string_view, std::string_view) {},
        ParseOptions{ParseMode::kStrict, "/data/sample.fastq", 4096});
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kParse);
    EXPECT_EQ(e.path(), "/data/sample.fastq");
    EXPECT_EQ(e.offset(), 4096u);  // base_offset + in-buffer record start
  }
}

TEST(Fastq, BufferLenientCorpusSkipCounts) {
  // One good record, one missing '+', one good, one truncated.
  const std::string content =
      "@a\nACGT\n+\nIIII\n@b\nCCCC\nIIII\n@c\nGGGG\n+\nIIII\n@d\nTT";
  std::vector<std::string> ids;
  const auto stats = for_each_record_in_buffer(
      content,
      [&](std::string_view id, std::string_view, std::string_view) { ids.emplace_back(id); },
      ParseOptions{ParseMode::kLenient, "", 0});
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.skipped, 2u);
}

TEST(Fastq, WriterSurfacesEnospcOnClose) {
  // /dev/full accepts buffered writes but fails the flush with ENOSPC —
  // exactly the silent-data-loss case the writer must surface.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full";
  FastqWriter w("/dev/full");
  w.write("x", "ACGT", "IIII");
  try {
    w.close();
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kIo);
    EXPECT_EQ(e.path(), "/dev/full");
    EXPECT_EQ(e.sys_errno(), ENOSPC);
  }
}

TEST(Fastq, WriteAfterCloseThrows) {
  TempDir dir;
  FastqWriter w(dir.file("w.fastq"));
  w.write("x", "ACGT", "IIII");
  w.close();
  w.close();  // idempotent
  EXPECT_THROW(w.write("y", "ACGT", "IIII"), util::Error);
}

TEST(Fastq, LargeFileOffsetsBeyond2GiB) {
  // Regression: fseek/ftell truncate at 2 GiB on ABIs with 32-bit long;
  // file_size_bytes and read_file_range must use fseeko/ftello.  The file is
  // sparse, so this costs ~no disk.
  TempDir dir;
  const std::string path = dir.file("big.fastq");
  const std::uint64_t two_gib = std::uint64_t{1} << 31;
  const std::string record = "@big\nACGTACGT\n+\nIIIIIIII\n";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (fseeko(f, static_cast<off_t>(two_gib), SEEK_SET) != 0) {
      std::fclose(f);
      GTEST_SKIP() << "filesystem does not support sparse 2 GiB files";
    }
    ASSERT_EQ(std::fwrite(record.data(), 1, record.size(), f), record.size());
    std::fclose(f);
  }
  std::error_code ec;
  if (std::filesystem::file_size(path, ec) != two_gib + record.size() || ec) {
    GTEST_SKIP() << "filesystem does not support sparse 2 GiB files";
  }
  EXPECT_EQ(file_size_bytes(path), two_gib + record.size());
  const auto buf = read_file_range(path, two_gib, record.size());
  EXPECT_EQ(std::string(buf.data(), buf.size()), record);
  std::vector<std::string> seqs;
  for_each_record_in_buffer(std::string_view(buf.data(), buf.size()),
                            [&](std::string_view, std::string_view seq, std::string_view) {
                              seqs.emplace_back(seq);
                            });
  EXPECT_EQ(seqs, std::vector<std::string>{"ACGTACGT"});
}

TEST(Fastq, BufferParsingMatchesStreaming) {
  TempDir dir;
  const std::string path = dir.file("d.fastq");
  std::vector<std::string> reads{"ACGTACGTAA", "TTTTGGGGCC", "NACGTNACGT"};
  test::write_fastq(path, reads);
  const auto buffer = read_file_range(path, 0, file_size_bytes(path));
  std::vector<std::string> parsed;
  for_each_record_in_buffer(std::string_view(buffer.data(), buffer.size()),
                            [&](std::string_view, std::string_view seq, std::string_view qual) {
                              EXPECT_EQ(seq.size(), qual.size());
                              parsed.emplace_back(seq);
                            });
  EXPECT_EQ(parsed, reads);
  EXPECT_EQ(count_records_in_buffer(std::string_view(buffer.data(), buffer.size())), 3u);
}

TEST(Fastq, ReadFileRangeExtractsMiddleRecord) {
  TempDir dir;
  const std::string path = dir.file("e.fastq");
  {
    FastqWriter w(path);
    w.write("a", "AAAA", "IIII");  // 15 bytes
    w.write("b", "CCCC", "IIII");  // next 15
    w.write("c", "GGGG", "IIII");
  }
  const auto mid = read_file_range(path, 15, 15);
  std::vector<std::string> seqs;
  for_each_record_in_buffer(std::string_view(mid.data(), mid.size()),
                            [&](std::string_view, std::string_view seq, std::string_view) {
                              seqs.emplace_back(seq);
                            });
  EXPECT_EQ(seqs, std::vector<std::string>{"CCCC"});
}

TEST(Fastq, ShortRangeReadThrows) {
  TempDir dir;
  const std::string path = dir.file("f.fastq");
  test::write_fastq(path, {"ACGT"});
  EXPECT_THROW(read_file_range(path, 0, file_size_bytes(path) + 1), std::runtime_error);
}

TEST(Fasta, RoundTripWithWrapping) {
  TempDir dir;
  const std::string path = dir.file("a.fasta");
  const std::vector<FastaRecord> records{{"seq1 descriptive text", std::string(200, 'A')},
                                         {"seq2", "ACGT"}};
  write_fasta(path, records, 60);
  const auto back = read_fasta(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, "seq1 descriptive text");
  EXPECT_EQ(back[0].seq, std::string(200, 'A'));
  EXPECT_EQ(back[1].seq, "ACGT");
}

TEST(Fasta, ReadsMultiLineAndCrLf) {
  TempDir dir;
  const std::string path = dir.file("b.fasta");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(">x\r\nACGT\r\nGGTT\r\n>y\nAA\n", f);
    std::fclose(f);
  }
  const auto records = read_fasta(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, "ACGTGGTT");
  EXPECT_EQ(records[1].seq, "AA");
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  TempDir dir;
  const std::string path = dir.file("c.fasta");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("ACGT\n>x\nAA\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_fasta(path), std::runtime_error);
}

TEST(Fasta, WriteContigsGeneratesHeaders) {
  TempDir dir;
  const std::string path = dir.file("contigs.fasta");
  write_contigs_fasta(path, {"ACGTACGT", "GG"}, "ctg");
  const auto records = read_fasta(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "ctg_0 len=8");
  EXPECT_EQ(records[1].id, "ctg_1 len=2");
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta("/nonexistent/no.fasta"), std::runtime_error);
}

TEST(Binary, RoundTripAllTypes) {
  TempDir dir;
  const std::string path = dir.file("idx.bin");
  const std::vector<std::uint32_t> v{1, 2, 3, 4};
  {
    BinaryWriter w(path, 0xABCD1234, 2);
    w.write_u32(7);
    w.write_u64(1ULL << 40);
    w.write_string("hello");
    w.write_vector<std::uint32_t>(v);
  }
  BinaryReader r(path, 0xABCD1234, 2);
  EXPECT_EQ(r.read_u32(), 7u);
  EXPECT_EQ(r.read_u64(), 1ULL << 40);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_vector<std::uint32_t>(), v);
}

TEST(Binary, MagicMismatchThrows) {
  TempDir dir;
  const std::string path = dir.file("idx.bin");
  { BinaryWriter w(path, 0x11111111, 1); }
  EXPECT_THROW(BinaryReader(path, 0x22222222, 1), std::runtime_error);
}

TEST(Binary, VersionMismatchThrows) {
  TempDir dir;
  const std::string path = dir.file("idx.bin");
  { BinaryWriter w(path, 0x11111111, 1); }
  EXPECT_THROW(BinaryReader(path, 0x11111111, 2), std::runtime_error);
}

TEST(Binary, TruncatedFileThrows) {
  TempDir dir;
  const std::string path = dir.file("idx.bin");
  { BinaryWriter w(path, 0x11111111, 1); }
  BinaryReader r(path, 0x11111111, 1);
  EXPECT_THROW(r.read_u64(), std::runtime_error);
}

}  // namespace
}  // namespace metaprep::io
