// Unit + property tests for the 2-bit codec and 64-bit canonical k-mers.
#include "kmer/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "util/rng.hpp"

namespace metaprep::kmer {
namespace {

std::string random_dna(int len, util::Xoshiro256& rng) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (auto& c : s) c = base_char(static_cast<std::uint8_t>(rng.next_below(4)));
  return s;
}

/// Reference reverse complement on strings.
std::string rc_ref(const std::string& s) {
  std::string out(s.rbegin(), s.rend());
  for (auto& c : out) {
    switch (c) {
      case 'A': c = 'T'; break;
      case 'T': c = 'A'; break;
      case 'C': c = 'G'; break;
      case 'G': c = 'C'; break;
      default: break;
    }
  }
  return out;
}

TEST(Codec, BaseCodeRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T'}) {
    const auto code = base_code(c);
    ASSERT_NE(code, kInvalidBase);
    EXPECT_EQ(base_char(code), c);
  }
}

TEST(Codec, LowercaseAccepted) {
  EXPECT_EQ(base_code('a'), base_code('A'));
  EXPECT_EQ(base_code('t'), base_code('T'));
}

TEST(Codec, InvalidCharacters) {
  for (char c : {'N', 'n', 'X', '-', ' ', '@', '0'}) {
    EXPECT_EQ(base_code(c), kInvalidBase) << "char " << c;
  }
}

TEST(Codec, ComplementPairs) {
  EXPECT_EQ(complement_code(base_code('A')), base_code('T'));
  EXPECT_EQ(complement_code(base_code('C')), base_code('G'));
  EXPECT_EQ(complement_code(base_code('G')), base_code('C'));
  EXPECT_EQ(complement_code(base_code('T')), base_code('A'));
}

TEST(Codec, EncodeDecodeRoundTripFixed) {
  const std::string s = "ACGTACGTACGTACGTACGTACGTACG";  // 27-mer
  EXPECT_EQ(decode64(encode64(s), 27), s);
}

TEST(Codec, EncodingPreservesLexOrder) {
  // Numeric order on encodings equals lexicographic order on strings.
  EXPECT_LT(encode64("AAC"), encode64("AAT"));
  EXPECT_LT(encode64("ACG"), encode64("CAA"));
  EXPECT_LT(encode64("TTA"), encode64("TTT"));
}

TEST(Codec, RevComp64KnownValues) {
  EXPECT_EQ(decode64(revcomp64(encode64("AAA"), 3), 3), "TTT");
  EXPECT_EQ(decode64(revcomp64(encode64("ACG"), 3), 3), "CGT");
  EXPECT_EQ(decode64(revcomp64(encode64("ACGT"), 4), 4), "ACGT");  // palindrome
}

class CodecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecPropertyTest, EncodeDecodeRoundTripRandom) {
  const int k = GetParam();
  util::Xoshiro256 rng(100 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 50; ++i) {
    const std::string s = random_dna(k, rng);
    EXPECT_EQ(decode64(encode64(s), k), s);
  }
}

TEST_P(CodecPropertyTest, RevCompMatchesStringReference) {
  const int k = GetParam();
  util::Xoshiro256 rng(200 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 50; ++i) {
    const std::string s = random_dna(k, rng);
    EXPECT_EQ(decode64(revcomp64(encode64(s), k), k), rc_ref(s));
  }
}

TEST_P(CodecPropertyTest, RevCompIsAnInvolution) {
  const int k = GetParam();
  util::Xoshiro256 rng(300 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t v = encode64(random_dna(k, rng));
    EXPECT_EQ(revcomp64(revcomp64(v, k), k), v);
  }
}

TEST_P(CodecPropertyTest, CanonicalIsMinAndStable) {
  const int k = GetParam();
  util::Xoshiro256 rng(400 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t v = encode64(random_dna(k, rng));
    const std::uint64_t rc = revcomp64(v, k);
    const std::uint64_t canon = canonical64(v, k);
    EXPECT_EQ(canon, std::min(v, rc));
    // Canonicalization is idempotent and orientation-independent.
    EXPECT_EQ(canonical64(canon, k), canon);
    EXPECT_EQ(canonical64(rc, k), canon);
  }
}

TEST_P(CodecPropertyTest, CanonicalStringIsLexSmaller) {
  const int k = GetParam();
  util::Xoshiro256 rng(500 + static_cast<std::uint64_t>(k));
  for (int i = 0; i < 30; ++i) {
    const std::string s = random_dna(k, rng);
    const std::string canon = decode64(canonical64(encode64(s), k), k);
    EXPECT_EQ(canon, std::min(s, rc_ref(s)));
  }
}

INSTANTIATE_TEST_SUITE_P(VariousK, CodecPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 11, 15, 16, 17, 21, 27, 31, 32));

TEST(Codec, PrefixBinExtractsTopBits) {
  // k=5, m=2: prefix of "CGTAC" is "CG".
  EXPECT_EQ(prefix_bin64(encode64("CGTAC"), 5, 2), encode64("CG"));
  EXPECT_EQ(prefix_bin64(encode64("AAAAA"), 5, 2), 0u);
  EXPECT_EQ(prefix_bin64(encode64("TTTTT"), 5, 3), encode64("TTT"));
}

TEST(Codec, PrefixBinFullWidth) {
  // m == k: the bin is the whole k-mer.
  const std::uint64_t v = encode64("ACGTACGT");
  EXPECT_EQ(prefix_bin64(v, 8, 8), static_cast<std::uint32_t>(v));
}

TEST(Codec, KmerMaskWidths) {
  EXPECT_EQ(kmer_mask64(1), 0x3ull);
  EXPECT_EQ(kmer_mask64(4), 0xFFull);
  EXPECT_EQ(kmer_mask64(32), ~0ull);
}

TEST(Codec, RevCompStringHandlesN) {
  EXPECT_EQ(revcomp_string("AACGT"), "ACGTT");
  EXPECT_EQ(revcomp_string("ACNGT"), "ACNGT");  // happens to be its own RC
  EXPECT_EQ(revcomp_string("NA"), "TN");
  EXPECT_EQ(revcomp_string(""), "");
}

}  // namespace
}  // namespace metaprep::kmer
