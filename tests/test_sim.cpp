// Tests for the synthetic metagenome simulator.
#include "sim/read_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "kmer/codec.hpp"
#include "sim/genome.hpp"
#include "sim/presets.hpp"
#include "test_support.hpp"

namespace metaprep::sim {
namespace {

using test::TempDir;

TEST(Genome, RandomGenomeDeterministicAndACGT) {
  const auto a = random_genome(1000, 5);
  const auto b = random_genome(1000, 5);
  const auto c = random_genome(1000, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.find_first_not_of("ACGT"), std::string::npos);
  // All four bases appear.
  for (char base : {'A', 'C', 'G', 'T'}) {
    EXPECT_NE(a.find(base), std::string::npos);
  }
}

TEST(Genome, GenerateGenomesRespectsConfig) {
  GenomeSetConfig cfg;
  cfg.num_species = 5;
  cfg.min_genome_len = 2000;
  cfg.max_genome_len = 4000;
  cfg.seed = 9;
  const auto genomes = generate_genomes(cfg);
  ASSERT_EQ(genomes.size(), 5u);
  for (const auto& g : genomes) {
    EXPECT_GE(g.size(), 2000u);
    EXPECT_LE(g.size(), 4000u);
  }
  // Deterministic.
  EXPECT_EQ(generate_genomes(cfg), genomes);
}

TEST(Genome, InvalidConfigThrows) {
  GenomeSetConfig cfg;
  cfg.num_species = 0;
  EXPECT_THROW(generate_genomes(cfg), std::invalid_argument);
  cfg.num_species = 1;
  cfg.min_genome_len = 10;
  cfg.max_genome_len = 5;
  EXPECT_THROW(generate_genomes(cfg), std::invalid_argument);
}

TEST(Abundances, NormalizedAndDeterministic) {
  const auto w = lognormal_abundances(10, 1.5, 42);
  ASSERT_EQ(w.size(), 10u);
  double total = 0.0;
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(lognormal_abundances(10, 1.5, 42), w);
}

TEST(Abundances, SigmaZeroIsUniform) {
  const auto w = lognormal_abundances(4, 0.0, 1);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(ReadSim, InMemoryDatasetShape) {
  DatasetConfig cfg;
  cfg.genomes.num_species = 4;
  cfg.genomes.min_genome_len = 3000;
  cfg.genomes.max_genome_len = 5000;
  cfg.num_pairs = 500;
  cfg.reads.read_len = 80;
  const auto ds = simulate_in_memory(cfg);
  ASSERT_EQ(ds.r1.size(), 500u);
  ASSERT_EQ(ds.r2.size(), 500u);
  ASSERT_EQ(ds.pair_species.size(), 500u);
  for (const auto& r : ds.r1) EXPECT_EQ(r.size(), 80u);
  for (const auto& r : ds.r2) EXPECT_EQ(r.size(), 80u);
  for (auto s : ds.pair_species) EXPECT_LT(s, 4u);
}

TEST(ReadSim, MatesComeFromSameFragmentWithoutErrors) {
  DatasetConfig cfg;
  cfg.genomes.num_species = 1;
  cfg.genomes.min_genome_len = 10000;
  cfg.genomes.max_genome_len = 10000;
  cfg.genomes.repeat_fraction = 0.0;
  cfg.genomes.shared_fraction = 0.0;
  cfg.num_pairs = 50;
  cfg.reads.error_rate = 0.0;
  cfg.reads.n_rate = 0.0;
  const auto genomes = generate_genomes(cfg.genomes);
  const auto ds = simulate_in_memory(cfg);
  for (std::size_t i = 0; i < ds.r1.size(); ++i) {
    // R1 appears verbatim in the genome; R2 is the reverse complement of a
    // downstream window.
    EXPECT_NE(genomes[0].find(ds.r1[i]), std::string::npos) << i;
    EXPECT_NE(genomes[0].find(kmer::revcomp_string(ds.r2[i])), std::string::npos) << i;
  }
}

TEST(ReadSim, ErrorRateApproximatelyHonored) {
  DatasetConfig cfg;
  cfg.genomes.num_species = 1;
  cfg.genomes.min_genome_len = 50000;
  cfg.genomes.max_genome_len = 50000;
  cfg.genomes.repeat_fraction = 0.0;
  cfg.genomes.shared_fraction = 0.0;
  cfg.num_pairs = 2000;
  cfg.reads.error_rate = 0.02;
  cfg.reads.n_rate = 0.01;
  const auto ds = simulate_in_memory(cfg);
  std::uint64_t n_count = 0;
  std::uint64_t bases = 0;
  for (const auto& r : ds.r1) {
    bases += r.size();
    n_count += static_cast<std::uint64_t>(std::count(r.begin(), r.end(), 'N'));
  }
  EXPECT_NEAR(static_cast<double>(n_count) / static_cast<double>(bases), 0.01, 0.004);
}

TEST(ReadSim, EndErrorBoostDegradesReadTails) {
  DatasetConfig cfg;
  cfg.genomes.num_species = 1;
  cfg.genomes.min_genome_len = 40'000;
  cfg.genomes.max_genome_len = 40'000;
  cfg.genomes.repeat_fraction = 0.0;
  cfg.genomes.shared_fraction = 0.0;
  cfg.num_pairs = 2000;
  cfg.reads.error_rate = 0.0;
  cfg.reads.n_rate = 0.0;
  cfg.reads.end_error_boost = 0.2;
  const auto genomes = generate_genomes(cfg.genomes);
  const auto ds = simulate_in_memory(cfg);
  // Compare mismatch rates in the first and last 20 bases of R1 against the
  // genome (R1 is a verbatim window plus substitutions).
  std::uint64_t head_err = 0, tail_err = 0, checked = 0;
  for (const auto& r : ds.r1) {
    // Locate the error-free prefix in the genome: use the first 30 bases
    // (boost is tiny there) as an anchor.
    const auto anchor = genomes[0].find(r.substr(0, 20));
    if (anchor == std::string::npos) continue;
    const auto truth = genomes[0].substr(anchor, r.size());
    if (truth.size() != r.size()) continue;
    ++checked;
    for (std::size_t i = 0; i < 20; ++i) head_err += r[i] != truth[i] ? 1 : 0;
    for (std::size_t i = r.size() - 20; i < r.size(); ++i) {
      tail_err += r[i] != truth[i] ? 1 : 0;
    }
  }
  ASSERT_GT(checked, 1000u);
  EXPECT_GT(tail_err, 5 * std::max<std::uint64_t>(head_err, 1));
}

TEST(ReadSim, QualityStringsDeclineWithDrop) {
  test::TempDir dir;
  DatasetConfig cfg;
  cfg.name = "qd";
  cfg.genomes.num_species = 1;
  cfg.genomes.min_genome_len = 5000;
  cfg.genomes.max_genome_len = 5000;
  cfg.num_pairs = 200;
  cfg.reads.end_quality_drop = 25;
  const auto ds = simulate_dataset(cfg, dir.file("qd"));
  double head = 0, tail = 0;
  std::uint64_t n = 0;
  for (const auto& rec : test::read_all_fastq(ds.files[0])) {
    for (std::size_t i = 0; i < 10; ++i) head += rec.qual[i];
    for (std::size_t i = rec.qual.size() - 10; i < rec.qual.size(); ++i) tail += rec.qual[i];
    n += 10;
  }
  // Average tail Phred is ~25 below average head Phred.
  EXPECT_NEAR((head - tail) / static_cast<double>(n), 25.0 * 0.9, 5.0);
}

TEST(ReadSim, DatasetWritesValidPairedFastq) {
  TempDir dir;
  DatasetConfig cfg;
  cfg.name = "tiny";
  cfg.genomes.num_species = 3;
  cfg.genomes.min_genome_len = 4000;
  cfg.genomes.max_genome_len = 6000;
  cfg.num_pairs = 200;
  const auto ds = simulate_dataset(cfg, dir.file("tiny"));
  ASSERT_EQ(ds.files.size(), 2u);
  const auto r1 = test::read_all_fastq(ds.files[0]);
  const auto r2 = test::read_all_fastq(ds.files[1]);
  ASSERT_EQ(r1.size(), 200u);
  ASSERT_EQ(r2.size(), 200u);
  EXPECT_EQ(ds.total_bases, 200u * 2 * cfg.reads.read_len);
  // Pair IDs line up.
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].id.substr(0, r1[i].id.size() - 2),
              r2[i].id.substr(0, r2[i].id.size() - 2));
    EXPECT_EQ(r1[i].id.back(), '1');
    EXPECT_EQ(r2[i].id.back(), '2');
  }
}

TEST(Presets, AllPresetsBuildAndScale) {
  for (Preset p : {Preset::HG, Preset::LL, Preset::MM, Preset::IS}) {
    const auto c1 = preset_config(p, 1.0);
    const auto c2 = preset_config(p, 2.0);
    EXPECT_EQ(c2.num_pairs, 2 * c1.num_pairs) << preset_name(p);
    EXPECT_EQ(c2.genomes.num_species, c1.genomes.num_species);
    EXPECT_FALSE(preset_name(p).empty());
  }
  EXPECT_THROW(preset_config(Preset::HG, 0.0), std::invalid_argument);
}

TEST(Presets, RelativeSizesFollowTable2) {
  const auto hg = preset_config(Preset::HG);
  const auto ll = preset_config(Preset::LL);
  const auto mm = preset_config(Preset::MM);
  const auto is = preset_config(Preset::IS);
  // Table 2 ordering: HG < LL < MM << IS.
  EXPECT_LT(hg.num_pairs, ll.num_pairs);
  EXPECT_LT(ll.num_pairs, mm.num_pairs);
  EXPECT_LT(mm.num_pairs, is.num_pairs);
  // LL ~ 1.7x HG, MM ~ 4.3x HG (Table 2 read-count ratios).
  EXPECT_NEAR(static_cast<double>(ll.num_pairs) / static_cast<double>(hg.num_pairs), 1.7, 0.2);
  EXPECT_NEAR(static_cast<double>(mm.num_pairs) / static_cast<double>(hg.num_pairs), 4.3, 0.3);
}

TEST(Presets, GenerationIsBitStableAcrossRuns) {
  // The reproduction contract: a preset regenerates byte-identical FASTQ
  // from its seed.  (Guards against accidental RNG-consumption reorderings;
  // intentional preset retunes will change EXPERIMENTS.md anyway.)
  TempDir dir_a;
  TempDir dir_b;
  const auto a = make_preset(Preset::HG, 0.05, dir_a.str());
  const auto b = make_preset(Preset::HG, 0.05, dir_b.str());
  for (std::size_t f = 0; f < a.files.size(); ++f) {
    const auto ra = test::read_all_fastq(a.files[f]);
    const auto rb = test::read_all_fastq(b.files[f]);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i].seq, rb[i].seq);
      ASSERT_EQ(ra[i].qual, rb[i].qual);
      ASSERT_EQ(ra[i].id, rb[i].id);
    }
  }
}

TEST(Presets, MakePresetWritesFiles) {
  TempDir dir;
  const auto ds = make_preset(Preset::HG, 0.05, dir.str());
  EXPECT_EQ(ds.name, "HG");
  ASSERT_EQ(ds.files.size(), 2u);
  EXPECT_GT(ds.num_pairs, 0u);
  EXPECT_EQ(test::read_all_fastq(ds.files[0]).size(), ds.num_pairs);
}

}  // namespace
}  // namespace metaprep::sim
