// Property / fuzz tests for the two kernels the pipelined scheduler leans
// hardest on: the LSD radix sorts (stability is what makes the overlap
// schedule's partition provably equal to barrier's) and the vectorized
// canonical-k-mer scanner (the fused KmerGen path emits through it).
//
// Each case randomizes the configuration axes (key_bits, digit_bits, n;
// sequence length, N runs, case) with a fixed seed and checks against the
// obvious reference: std::stable_sort and the scalar scanner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "kmer/scanner.hpp"
#include "sort/radix.hpp"
#include "util/rng.hpp"

namespace metaprep {
namespace {

std::size_t pick_n(util::Xoshiro256& rng, int iter) {
  // Always hit the degenerate sizes early, then randomize.
  if (iter == 0) return 0;
  if (iter == 1) return 1;
  if (iter == 2) return 2;
  return 1 + rng.next_below(1500);
}

TEST(Property, RadixSortKv64MatchesStableSort) {
  util::Xoshiro256 rng(20260805);
  for (int iter = 0; iter < 120; ++iter) {
    const int key_bits = 1 + static_cast<int>(rng.next_below(64));
    const int digit_bits = 1 + static_cast<int>(rng.next_below(16));
    const std::size_t n = pick_n(rng, iter);
    const std::uint64_t mask =
        key_bits == 64 ? ~0ull : ((1ull << key_bits) - 1);  // small widths force duplicates

    std::vector<std::uint64_t> keys(n);
    std::vector<std::uint32_t> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = rng.next() & mask;
      vals[i] = static_cast<std::uint32_t>(i);  // unique payloads expose stability breaks
    }

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
    std::vector<std::uint64_t> expect_keys(n);
    std::vector<std::uint32_t> expect_vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      expect_keys[i] = keys[order[i]];
      expect_vals[i] = vals[order[i]];
    }

    sort::radix_sort_kv64(keys, vals, key_bits, digit_bits);
    ASSERT_EQ(keys, expect_keys) << "key_bits=" << key_bits << " digit_bits=" << digit_bits
                                 << " n=" << n;
    ASSERT_EQ(vals, expect_vals) << "key_bits=" << key_bits << " digit_bits=" << digit_bits
                                 << " n=" << n;
  }
}

TEST(Property, RadixSortKv128MatchesStableSort) {
  util::Xoshiro256 rng(918273645);
  for (int iter = 0; iter < 80; ++iter) {
    const int key_bits = 1 + static_cast<int>(rng.next_below(128));
    const int digit_bits = 1 + static_cast<int>(rng.next_below(16));
    const std::size_t n = pick_n(rng, iter);
    const int hi_bits = key_bits > 64 ? key_bits - 64 : 0;
    const std::uint64_t lo_mask =
        key_bits >= 64 ? ~0ull : ((1ull << key_bits) - 1);
    const std::uint64_t hi_mask =
        hi_bits == 0 ? 0 : (hi_bits == 64 ? ~0ull : ((1ull << hi_bits) - 1));

    std::vector<std::uint64_t> hi(n), lo(n);
    std::vector<std::uint32_t> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      hi[i] = rng.next() & hi_mask;
      lo[i] = rng.next() & lo_mask;
      vals[i] = static_cast<std::uint32_t>(i);
    }

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return hi[a] != hi[b] ? hi[a] < hi[b] : lo[a] < lo[b];
    });
    std::vector<std::uint64_t> expect_hi(n), expect_lo(n);
    std::vector<std::uint32_t> expect_vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      expect_hi[i] = hi[order[i]];
      expect_lo[i] = lo[order[i]];
      expect_vals[i] = vals[order[i]];
    }

    std::vector<std::uint64_t> tmp_hi(n), tmp_lo(n);
    std::vector<std::uint32_t> tmp_vals(n);
    sort::radix_sort_kv128(hi, lo, vals, tmp_hi, tmp_lo, tmp_vals, key_bits, digit_bits);
    ASSERT_EQ(hi, expect_hi) << "key_bits=" << key_bits << " digit_bits=" << digit_bits
                             << " n=" << n;
    ASSERT_EQ(lo, expect_lo) << "key_bits=" << key_bits << " digit_bits=" << digit_bits
                             << " n=" << n;
    ASSERT_EQ(vals, expect_vals) << "key_bits=" << key_bits << " digit_bits=" << digit_bits
                                 << " n=" << n;
  }
}

TEST(Property, RadixSortRejectsBadDigitWidth) {
  std::vector<std::uint64_t> keys{3, 1, 2};
  std::vector<std::uint32_t> vals{0, 1, 2};
  EXPECT_THROW(sort::radix_sort_kv64(keys, vals, 64, 0), std::invalid_argument);
  EXPECT_THROW(sort::radix_sort_kv64(keys, vals, 64, 17), std::invalid_argument);
}

/// Random sequence generator covering the scanner's awkward inputs: embedded
/// N runs (upper- and lowercase), mixed-case ACGT, and short tails.
std::string random_sequence(util::Xoshiro256& rng, std::size_t len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T', 'a', 'c', 'g', 't'};
  std::string seq;
  seq.reserve(len);
  while (seq.size() < len) {
    if (rng.next_below(12) == 0) {
      // N run, 1..8 long, randomly cased.
      const std::size_t run = 1 + rng.next_below(8);
      const char n = rng.next_below(2) == 0 ? 'N' : 'n';
      for (std::size_t i = 0; i < run && seq.size() < len; ++i) seq.push_back(n);
    } else {
      seq.push_back(kBases[rng.next_below(8)]);
    }
  }
  return seq;
}

TEST(Property, VectorScanMatchesScalarScanAsMultiset) {
  // The x4 scanner emits lane-major, the scalar position-major; their
  // sorted outputs must be identical for any input.
  util::Xoshiro256 rng(555001);
  for (int iter = 0; iter < 300; ++iter) {
    const int k = 1 + static_cast<int>(rng.next_below(31));
    // Bias lengths toward the short-tail regime (< k + 16, where the x4
    // scanner must fall back to the scalar path) and the empty/sub-k cases.
    std::size_t len;
    switch (iter % 4) {
      case 0: len = rng.next_below(static_cast<std::uint64_t>(k));  break;
      case 1: len = static_cast<std::size_t>(k) + rng.next_below(16); break;
      default: len = rng.next_below(400); break;
    }
    const std::string seq = random_sequence(rng, len);

    std::vector<std::uint64_t> scalar, vec;
    kmer::scan_canonical_kmers64(seq, k, scalar);
    kmer::scan_canonical_kmers64_x4(seq, k, vec);
    std::sort(scalar.begin(), scalar.end());
    std::sort(vec.begin(), vec.end());
    ASSERT_EQ(vec, scalar) << "k=" << k << " len=" << len << " seq=" << seq;
  }
}

TEST(Property, VectorScanHandlesAllNAndEmpty) {
  std::vector<std::uint64_t> out;
  kmer::scan_canonical_kmers64_x4("", 15, out);
  EXPECT_TRUE(out.empty());
  kmer::scan_canonical_kmers64_x4("NNNNNNNNNNNNNNNNNNNNNNNN", 15, out);
  EXPECT_TRUE(out.empty());
  kmer::scan_canonical_kmers64_x4("nnnnnnnnnnnnnnnnnnnnnnnn", 15, out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace metaprep
