// Performance-attribution layer tests: the Fig. 8 imbalance statistic,
// PhaseAccountant span/flow analysis on a hand-built trace, the golden
// metaprep-report rendering of a canned report, attr.json round-tripping
// through the offline loader, and — over a real pipeline grid — the
// invariant that the extracted critical path never exceeds the measured
// wall clock.
#include "obs/attr.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "report.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"
#include "util/timer.hpp"

namespace metaprep::obs {
namespace {

using test::TempDir;

TEST(ImbalanceFactor, EdgeCases) {
  EXPECT_DOUBLE_EQ(PhaseAccountant::imbalance_factor({}), 0.0);       // empty phase
  EXPECT_DOUBLE_EQ(PhaseAccountant::imbalance_factor({0.7}), 1.0);    // single rank
  EXPECT_DOUBLE_EQ(PhaseAccountant::imbalance_factor({0.0, 0.0}), 0.0);  // all idle
  EXPECT_DOUBLE_EQ(PhaseAccountant::imbalance_factor({1.0, 3.0}), 1.5);
  EXPECT_DOUBLE_EQ(PhaseAccountant::imbalance_factor({2.0, 2.0, 2.0}), 1.0);
}

TEST(CommMatrixSkew, EdgeCases) {
  EXPECT_DOUBLE_EQ(comm_matrix_skew({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(comm_matrix_skew({42}, 1), 0.0);        // no off-diagonal
  EXPECT_DOUBLE_EQ(comm_matrix_skew({1, 2, 3}, 2), 0.0);   // undersized matrix
  EXPECT_DOUBLE_EQ(comm_matrix_skew({9, 0, 0, 9}, 2), 0.0);  // diagonal only
  // Off-diagonal {100, 300}: mean 200, max 300 -> 1.5.
  EXPECT_DOUBLE_EQ(comm_matrix_skew({0, 100, 300, 0}, 2), 1.5);
}

TEST(PhaseAccountant, EmptyTraceYieldsEmptyReport) {
  const AttrReport r = PhaseAccountant::analyze({});
  EXPECT_TRUE(r.phases.empty());
  EXPECT_TRUE(r.critical_path.steps.empty());
  EXPECT_DOUBLE_EQ(r.wall_s, 0.0);
}

/// Hand-built two-rank trace with one message edge:
///   rank 0: KmerGen [0, 2000us], KmerGen-Comm [2000, 2400us], send @2400
///   rank 1: KmerGen [0, 1600us], recv @2400, LocalSort [2400, 3400us]
/// The longest chain crosses the flow edge: 2000 + 400 + 1000 = 3400us,
/// beating rank 1's serial 1600 + 1000 = 2600us.
std::vector<TraceEvent> canned_trace() {
  std::vector<TraceEvent> ev;
  ev.push_back({"KmerGen", 0.0, 2000.0, 0, 0, 0, 0});
  ev.push_back({"KmerGen-Comm", 2000.0, 400.0, 0, 0, 0, 0});
  ev.push_back({"send", 2400.0, -1.0, 0, 0, 7, TraceEvent::kFlowSend});
  ev.push_back({"KmerGen", 0.0, 1600.0, 1, 0, 0, 0});
  ev.push_back({"recv", 2400.0, -1.0, 1, 0, 7, TraceEvent::kFlowRecv});
  ev.push_back({"LocalSort", 2400.0, 1000.0, 1, 0, 0, 0});
  return ev;
}

TEST(PhaseAccountant, CannedTracePhasesAndCriticalPath) {
  const AttrReport r = PhaseAccountant::analyze(canned_trace(), /*wall_us=*/4000.0);
  EXPECT_DOUBLE_EQ(r.wall_s, 0.004);
  EXPECT_DOUBLE_EQ(r.trace_span_s, 0.0034);
  EXPECT_EQ(r.ranks, 2);

  ASSERT_EQ(r.phases.size(), 3u);  // sorted by max_rank_s descending
  EXPECT_EQ(r.phases[0].name, "KmerGen");
  EXPECT_DOUBLE_EQ(r.phases[0].self_s, 0.0036);
  EXPECT_DOUBLE_EQ(r.phases[0].max_rank_s, 0.002);
  EXPECT_DOUBLE_EQ(r.phases[0].mean_rank_s, 0.0018);
  EXPECT_NEAR(r.phases[0].imbalance, 2.0 / 1.8, 1e-12);
  EXPECT_DOUBLE_EQ(r.phases[0].wall_frac, 0.5);
  EXPECT_EQ(r.phases[1].name, "LocalSort");
  EXPECT_DOUBLE_EQ(r.phases[1].imbalance, 1.0);  // single rank
  EXPECT_EQ(r.phases[2].name, "KmerGen-Comm");

  const CriticalPath& cp = r.critical_path;
  EXPECT_NEAR(cp.length_s, 0.0034, 1e-12);
  EXPECT_NEAR(cp.wait_s, 0.0004, 1e-12);
  EXPECT_NEAR(cp.compute_s, 0.003, 1e-12);
  ASSERT_EQ(cp.steps.size(), 3u);
  EXPECT_EQ(cp.steps[0].name, "KmerGen");
  EXPECT_EQ(cp.steps[0].pid, 0);
  EXPECT_EQ(cp.steps[1].name, "KmerGen-Comm");
  EXPECT_TRUE(cp.steps[1].wait);
  EXPECT_EQ(cp.steps[2].name, "LocalSort");
  EXPECT_EQ(cp.steps[2].pid, 1);
  EXPECT_TRUE(cp.steps[2].via_flow);  // entered through the message edge
}

/// The canned report used by the golden-rendering and round-trip tests:
/// analysis of canned_trace() plus the comm/memory sections the pipeline
/// would fill.
AttrReport canned_report() {
  AttrReport r = PhaseAccountant::analyze(canned_trace(), 4000.0);
  r.threads = 1;
  r.passes = 1;
  r.comm_ranks = 2;
  r.comm_bytes = {0, 100, 300, 0};
  r.comm_msgs = {0, 1, 1, 0};
  r.comm_skew = comm_matrix_skew(r.comm_bytes, 2);
  r.memory.push_back({"dsu", 1024, 2048});
  r.memory.push_back({"tuples", 3 << 20, 2 << 20});
  r.mem_predicted_total = 4 << 20;
  r.peak_rss_bytes = 64 << 20;
  r.rss_samples.push_back({"KmerGen", 60 << 20});
  r.rss_samples.push_back({"LocalSort", 64 << 20});
  return r;
}

TEST(FormatReport, GoldenCannedReport) {
  const std::string got = format_report(canned_report());
  const std::string want =
      "METAPREP performance attribution\n"
      "  wall 0.004 s (trace span 0.003 s, ranks=2 threads=1 passes=1)\n"
      "\n"
      "  phase walls (self-time; imbalance = max/mean over ranks, Fig. 8)\n"
      "  phase            max-rank (s) mean-rank(s)  imbalance   wall%\n"
      "  KmerGen                0.0020       0.0018      1.111   50.0%\n"
      "  LocalSort              0.0010       0.0010      1.000   25.0%\n"
      "  KmerGen-Comm           0.0004       0.0004      1.000   10.0%\n"
      "\n"
      "  critical path: 0.003 s (85.0% of wall; wait 0.000 s, compute 0.003 s)\n"
      "    [r0/t0]       KmerGen              0.0020 s\n"
      "    [r0/t0]       KmerGen-Comm         0.0004 s  (wait)\n"
      "    [r1/t0] <-msg LocalSort            0.0010 s\n"
      "\n"
      "  comm matrix: skew 1.500 (max/mean off-diagonal bytes)\n"
      "    src\\dst            0            1\n"
      "          0            0          100\n"
      "          1          300            0\n"
      "\n"
      "  memory high-water by subsystem (measured vs memory_model)\n"
      "    dsu            1.00 KiB   predicted     2.00 KiB  (-50.0%)\n"
      "    tuples         3.00 MiB   predicted     2.00 MiB  (+50.0%)\n"
      "    model total 4.00 MiB; peak RSS 64.00 MiB\n"
      "      after KmerGen          peak RSS    60.00 MiB\n"
      "      after LocalSort        peak RSS    64.00 MiB\n";
  EXPECT_EQ(got, want) << "---- actual ----\n" << got;
}

TEST(AttrJson, RoundTripsThroughOfflineLoader) {
  const AttrReport orig = canned_report();
  TempDir dir;
  orig.write_json(dir.file("attr.json"));
  const AttrReport back = report::load_attr(dir.file("attr.json"));

  EXPECT_DOUBLE_EQ(back.wall_s, orig.wall_s);
  EXPECT_DOUBLE_EQ(back.trace_span_s, orig.trace_span_s);
  EXPECT_EQ(back.ranks, orig.ranks);
  EXPECT_EQ(back.threads, orig.threads);
  EXPECT_EQ(back.passes, orig.passes);
  ASSERT_EQ(back.phases.size(), orig.phases.size());
  for (std::size_t i = 0; i < orig.phases.size(); ++i) {
    EXPECT_EQ(back.phases[i].name, orig.phases[i].name);
    EXPECT_DOUBLE_EQ(back.phases[i].self_s, orig.phases[i].self_s);
    EXPECT_DOUBLE_EQ(back.phases[i].imbalance, orig.phases[i].imbalance);
    EXPECT_EQ(back.phases[i].rank_self_s, orig.phases[i].rank_self_s);
  }
  ASSERT_EQ(back.critical_path.steps.size(), orig.critical_path.steps.size());
  EXPECT_DOUBLE_EQ(back.critical_path.length_s, orig.critical_path.length_s);
  EXPECT_DOUBLE_EQ(back.critical_path.wait_s, orig.critical_path.wait_s);
  EXPECT_EQ(back.critical_path.steps[2].via_flow, true);
  EXPECT_EQ(back.comm_bytes, orig.comm_bytes);
  EXPECT_EQ(back.comm_msgs, orig.comm_msgs);
  EXPECT_DOUBLE_EQ(back.comm_skew, orig.comm_skew);
  ASSERT_EQ(back.memory.size(), orig.memory.size());
  EXPECT_EQ(back.memory[1].name, "tuples");
  EXPECT_EQ(back.memory[1].high_water_bytes, orig.memory[1].high_water_bytes);
  EXPECT_EQ(back.memory[1].predicted_bytes, orig.memory[1].predicted_bytes);
  EXPECT_EQ(back.mem_predicted_total, orig.mem_predicted_total);
  EXPECT_EQ(back.peak_rss_bytes, orig.peak_rss_bytes);
  ASSERT_EQ(back.rss_samples.size(), 2u);
  EXPECT_EQ(back.rss_samples[0].phase, "KmerGen");

  // The rendered table must be byte-identical after the round trip.
  EXPECT_EQ(format_report(back), format_report(orig));
}

TEST(ChromeTraceLoader, ParsesSpansFlowsAndInstants) {
  TempDir dir;
  const std::string path = dir.file("trace.json");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char* body =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"rank 0\"}},"
        "{\"name\":\"outer\",\"ph\":\"B\",\"ts\":0.0,\"pid\":0,\"tid\":0},"
        "{\"name\":\"inner\",\"ph\":\"B\",\"ts\":10.0,\"pid\":0,\"tid\":0},"
        "{\"name\":\"inner\",\"ph\":\"E\",\"ts\":30.0,\"pid\":0,\"tid\":0},"
        "{\"name\":\"mark\",\"ph\":\"i\",\"ts\":40.0,\"pid\":0,\"tid\":0,\"s\":\"t\"},"
        "{\"name\":\"outer\",\"ph\":\"E\",\"ts\":50.0,\"pid\":0,\"tid\":0},"
        "{\"name\":\"msg\",\"cat\":\"comm\",\"ph\":\"s\",\"id\":9,\"ts\":50.0,"
        "\"pid\":0,\"tid\":0},"
        "{\"name\":\"msg\",\"cat\":\"comm\",\"ph\":\"f\",\"id\":9,\"ts\":60.0,"
        "\"pid\":1,\"tid\":0,\"bp\":\"e\"}]}";
    std::fputs(body, f);
    std::fclose(f);
  }
  const auto events = report::load_chrome_trace(path);
  ASSERT_EQ(events.size(), 5u);  // inner, instant, outer, send, recv
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_DOUBLE_EQ(events[0].ts_us, 10.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 20.0);
  EXPECT_EQ(events[1].name, "mark");
  EXPECT_LT(events[1].dur_us, 0.0);
  EXPECT_EQ(events[1].flow_dir, 0);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_DOUBLE_EQ(events[2].dur_us, 50.0);
  EXPECT_EQ(events[3].flow_dir, TraceEvent::kFlowSend);
  EXPECT_EQ(events[3].flow, 9u);
  EXPECT_EQ(events[4].flow_dir, TraceEvent::kFlowRecv);
  EXPECT_EQ(events[4].pid, 1);
}

TEST(MetricsMerge, FillsGapsWithoutOverwriting) {
  TempDir dir;
  const std::string path = dir.file("metrics.jsonl");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "{\"name\":\"proc.peak_rss_bytes\",\"type\":\"gauge\",\"value\":12345678}\n"
        "{\"name\":\"mem.sort.high_water\",\"type\":\"gauge\",\"value\":4096}\n"
        "{\"name\":\"mem.tuples.high_water\",\"type\":\"gauge\",\"value\":999}\n"
        "{\"name\":\"mpsim.comm_matrix_skew\",\"type\":\"gauge\",\"value\":2.5}\n"
        "{\"name\":\"sort.keys_sorted\",\"type\":\"counter\",\"value\":7}\n",
        f);
    std::fclose(f);
  }
  AttrReport r;
  r.memory.push_back({"tuples", 3 << 20, 2 << 20});
  r.comm_skew = 1.5;
  report::merge_metrics(r, report::load_metrics(path));
  EXPECT_EQ(r.peak_rss_bytes, 12345678u);      // filled from the gauge
  EXPECT_DOUBLE_EQ(r.comm_skew, 1.5);          // existing value wins
  ASSERT_EQ(r.memory.size(), 2u);              // sorted by name
  EXPECT_EQ(r.memory[0].name, "sort");         // new subsystem added
  EXPECT_EQ(r.memory[0].high_water_bytes, 4096u);
  EXPECT_EQ(r.memory[1].name, "tuples");
  EXPECT_EQ(r.memory[1].high_water_bytes, 3u << 20);  // not overwritten by 999
}

/// Differential grid over schedules, rank counts, and pass counts: the
/// critical path extracted from a real traced run can never exceed the
/// measured wall clock, and wait + compute must account for every step.
TEST(AttrGrid, CriticalPathNeverExceedsMeasuredWall) {
  TempDir dir;
  sim::DatasetConfig dcfg;
  dcfg.name = "attrgrid";
  dcfg.genomes.num_species = 4;
  dcfg.genomes.min_genome_len = 3000;
  dcfg.genomes.max_genome_len = 6000;
  dcfg.num_pairs = 250;
  dcfg.reads.seed = 77;
  const auto dataset = sim::simulate_dataset(dcfg, dir.file("attrgrid"));
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 5;
  opt.target_chunks = 9;
  const auto index = core::create_index("attrgrid", dataset.files, true, opt);

  for (const auto mode : {core::PipelineMode::kBarrier, core::PipelineMode::kOverlap}) {
    for (const int P : {1, 4}) {
      for (const int S : {1, 2}) {
        core::MetaprepConfig cfg;
        cfg.k = 15;
        cfg.num_ranks = P;
        cfg.threads_per_rank = 2;
        cfg.num_passes = S;
        cfg.write_output = false;
        cfg.output_dir = dir.str();
        cfg.pipeline_mode = mode;
        cfg.attr_out = dir.file("attr_grid.json");
        util::WallTimer timer;
        const auto result = core::run_metaprep(index, cfg);
        const double outer_wall = timer.seconds();
        SCOPED_TRACE(testing::Message()
                     << "mode=" << (mode == core::PipelineMode::kOverlap ? "overlap" : "barrier")
                     << " P=" << P << " S=" << S);
        ASSERT_TRUE(result.has_attr);
        const AttrReport& a = result.attr;
        EXPECT_FALSE(a.phases.empty());
        EXPECT_FALSE(a.critical_path.steps.empty());
        EXPECT_GT(a.critical_path.length_s, 0.0);
        // Path <= run wall (recorded inside run_metaprep) <= our outer wall.
        EXPECT_LE(a.critical_path.length_s, a.wall_s + 1e-6);
        EXPECT_LE(a.critical_path.length_s, outer_wall + 1e-6);
        EXPECT_NEAR(a.critical_path.wait_s + a.critical_path.compute_s,
                    a.critical_path.length_s, 1e-6);
        for (const PhaseStat& p : a.phases) {
          if (p.self_s > 0.0) {
            EXPECT_GE(p.imbalance, 1.0);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace metaprep::obs
