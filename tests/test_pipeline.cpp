// End-to-end pipeline tests: the METAPREP partition must equal a brute-force
// read-graph connected-components reference for every (P, T, S) and k
// configuration, and the partitioned FASTQ output must be a lossless split
// of the input.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/index_create.hpp"
#include "core/memory_model.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace metaprep::core {
namespace {

using test::TempDir;

struct Fixture {
  TempDir dir;
  DatasetIndex index;
  sim::SimulatedDataset dataset;

  explicit Fixture(int k, std::uint64_t pairs = 250, int m = 5, std::uint32_t chunks = 9,
                   int species = 4) {
    sim::DatasetConfig cfg;
    cfg.name = "pipe";
    cfg.genomes.num_species = species;
    cfg.genomes.min_genome_len = 3000;
    cfg.genomes.max_genome_len = 6000;
    cfg.genomes.shared_fraction = 0.02;
    cfg.num_pairs = pairs;
    cfg.reads.seed = 50 + static_cast<std::uint64_t>(k);
    dataset = sim::simulate_dataset(cfg, dir.file("pipe"));
    IndexCreateOptions opt;
    opt.k = k;
    opt.m = m;
    opt.target_chunks = chunks;
    index = create_index("pipe", dataset.files, true, opt);
  }
};

MetaprepConfig base_config(int k, const std::string& out_dir) {
  MetaprepConfig cfg;
  cfg.k = k;
  cfg.write_output = false;
  cfg.output_dir = out_dir;
  return cfg;
}

struct PTS {
  int P, T, S;
};

class PipelineGridTest : public ::testing::TestWithParam<PTS> {};

TEST_P(PipelineGridTest, PartitionMatchesBruteForceReference) {
  const auto [P, T, S] = GetParam();
  static Fixture fixture(15);  // shared across the grid: dataset is immutable
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_ranks = P;
  cfg.threads_per_rank = T;
  cfg.num_passes = S;

  const auto result = run_metaprep(fixture.index, cfg);
  const auto expected = reference_components(fixture.index, cfg.filter);

  EXPECT_EQ(result.num_reads, fixture.index.total_reads);
  EXPECT_EQ(test::normalize_partition(result.labels), test::normalize_partition(expected));
  EXPECT_EQ(result.passes_used, S);
  EXPECT_GT(result.total_tuples, 0u);
  EXPECT_GE(result.cc_iterations_max, 1);
  EXPECT_EQ(result.rank_times.size(), static_cast<std::size_t>(P));
}

INSTANTIATE_TEST_SUITE_P(Grid, PipelineGridTest,
                         ::testing::Values(PTS{1, 1, 1}, PTS{1, 4, 1}, PTS{2, 2, 1},
                                           PTS{4, 1, 1}, PTS{4, 3, 2}, PTS{3, 2, 3},
                                           PTS{8, 2, 1}, PTS{2, 4, 4}, PTS{5, 1, 2}));

class PipelineKTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineKTest, AllKWidthsMatchReference) {
  const int k = GetParam();
  Fixture fixture(k, 150);
  auto cfg = base_config(k, fixture.dir.str());
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  const auto result = run_metaprep(fixture.index, cfg);
  const auto expected = reference_components(fixture.index, cfg.filter);
  EXPECT_EQ(test::normalize_partition(result.labels), test::normalize_partition(expected));
}

// 15/27/31/32 exercise the 64-bit path, 33/45/63 the 128-bit path.
INSTANTIATE_TEST_SUITE_P(KWidths, PipelineKTest, ::testing::Values(15, 27, 31, 32, 33, 45, 63));

TEST(Pipeline, FrequencyFilterMatchesReference) {
  Fixture fixture(15, 300);
  for (const auto& [lo, hi] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {0, 30}, {2, 0xFFFFFFFFu}, {2, 10}, {3, 5}}) {
    auto cfg = base_config(15, fixture.dir.str());
    cfg.num_ranks = 3;
    cfg.threads_per_rank = 2;
    cfg.filter.min_freq = lo;
    cfg.filter.max_freq = hi;
    const auto result = run_metaprep(fixture.index, cfg);
    const auto expected = reference_components(fixture.index, cfg.filter);
    EXPECT_EQ(test::normalize_partition(result.labels), test::normalize_partition(expected))
        << "filter [" << lo << ", " << hi << "]";
  }
}

TEST(Pipeline, FilterShrinksLargestComponent) {
  Fixture fixture(15, 400, 5, 9, 6);
  auto cfg = base_config(15, fixture.dir.str());
  const auto unfiltered = run_metaprep(fixture.index, cfg);
  cfg.filter.min_freq = 2;
  cfg.filter.max_freq = 20;
  const auto filtered = run_metaprep(fixture.index, cfg);
  EXPECT_LE(filtered.largest_size, unfiltered.largest_size);
  EXPECT_GE(filtered.num_components, unfiltered.num_components);
}

TEST(Pipeline, CcOptOnAndOffAgree) {
  Fixture fixture(15, 250);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 3;  // multipass so the optimization actually engages
  cfg.cc_opt = true;
  const auto with_opt = run_metaprep(fixture.index, cfg);
  cfg.cc_opt = false;
  const auto without_opt = run_metaprep(fixture.index, cfg);
  EXPECT_EQ(test::normalize_partition(with_opt.labels),
            test::normalize_partition(without_opt.labels));
}

TEST(Pipeline, AutoPassSelectionFromBudget) {
  Fixture fixture(15, 200);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_passes = 0;
  cfg.memory_budget_bytes = 1ULL << 30;  // plenty: expect 1 pass
  const auto r = run_metaprep(fixture.index, cfg);
  EXPECT_EQ(r.passes_used, 1);
  // A budget barely above the fixed terms should force multiple passes.
  MemoryModelInput mm;
  mm.total_tuples = fixture.index.mer_hist.total();
  mm.total_reads = fixture.index.total_reads;
  mm.num_chunks = fixture.index.part.num_chunks();
  mm.max_chunk_bytes = fixture.index.max_chunk_bytes();
  mm.m = fixture.index.mer_hist.m;
  mm.num_passes = 1;
  const auto one_pass = estimate_memory(mm);
  cfg.memory_budget_bytes = one_pass.total - one_pass.kmer_out / 2;
  const auto r2 = run_metaprep(fixture.index, cfg);
  EXPECT_GT(r2.passes_used, 1);
  EXPECT_EQ(test::normalize_partition(r.labels), test::normalize_partition(r2.labels));
}

TEST(Pipeline, ImpossibleBudgetThrows) {
  Fixture fixture(15, 100);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_passes = 0;
  cfg.memory_budget_bytes = 10;
  EXPECT_THROW(run_metaprep(fixture.index, cfg), std::runtime_error);
}

TEST(Pipeline, MismatchedKThrows) {
  Fixture fixture(15, 100);
  auto cfg = base_config(21, fixture.dir.str());
  EXPECT_THROW(run_metaprep(fixture.index, cfg), metaprep::util::Error);
}

TEST(Pipeline, EmptyInputYieldsEmptyResultWithoutGhostFiles) {
  // R == 0 hardening: an index over an empty FASTQ must short-circuit to a
  // well-formed empty result in both pipeline modes — no throw, no sentinel
  // largest root, and no ghost ".other.fastq" (or bin) files on disk.
  Fixture fixture(15, 0);
  for (auto mode : {PipelineMode::kBarrier, PipelineMode::kOverlap}) {
    for (int bins : {0, 2}) {
      test::TempDir out;
      auto cfg = base_config(15, out.str());
      cfg.num_ranks = 2;
      cfg.threads_per_rank = 2;
      cfg.pipeline_mode = mode;
      cfg.write_output = true;
      cfg.output_bins = bins;
      const auto r = run_metaprep(fixture.index, cfg);
      EXPECT_EQ(r.num_reads, 0u);
      EXPECT_TRUE(r.labels.empty());
      EXPECT_EQ(r.num_components, 0u);
      EXPECT_EQ(r.largest_size, 0u);
      EXPECT_DOUBLE_EQ(r.largest_fraction, 0.0);
      EXPECT_TRUE(r.output_files.empty());
      EXPECT_TRUE(r.bin_manifest_path.empty());
      std::size_t on_disk = 0;
      for (const auto& e : std::filesystem::directory_iterator(out.str())) {
        (void)e;
        ++on_disk;
      }
      EXPECT_EQ(on_disk, 0u);
    }
  }
}

TEST(Pipeline, ComponentAccountingConsistent) {
  Fixture fixture(15, 300);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_ranks = 4;
  cfg.threads_per_rank = 2;
  const auto r = run_metaprep(fixture.index, cfg);
  // Component sizes sum to R; largest matches the labels array.
  std::map<std::uint32_t, std::uint64_t> sizes;
  for (auto l : r.labels) ++sizes[l];
  EXPECT_EQ(sizes.size(), r.num_components);
  std::uint64_t largest = 0;
  for (const auto& [root, size] : sizes) largest = std::max(largest, size);
  EXPECT_EQ(largest, r.largest_size);
  EXPECT_EQ(sizes.at(r.largest_root), r.largest_size);
  EXPECT_DOUBLE_EQ(r.largest_fraction,
                   static_cast<double>(largest) / static_cast<double>(r.num_reads));
  ASSERT_FALSE(r.top_component_sizes.empty());
  EXPECT_EQ(r.top_component_sizes.front(), largest);
  EXPECT_TRUE(std::is_sorted(r.top_component_sizes.begin(), r.top_component_sizes.end(),
                             std::greater<>()));
}

TEST(Pipeline, OutputFastqIsLosslessSplit) {
  Fixture fixture(15, 200, 5, 7);
  TempDir out_dir;
  auto cfg = base_config(15, out_dir.str());
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.write_output = true;
  const auto r = run_metaprep(fixture.index, cfg);
  ASSERT_FALSE(r.output_files.empty());

  // Gather all output records; id -> sequences seen.
  std::multiset<std::string> output_ids;
  std::uint64_t lc_records = 0;
  std::uint64_t other_records = 0;
  for (const auto& path : r.output_files) {
    const bool is_lc = path.find(".lc.") != std::string::npos;
    for (const auto& rec : test::read_all_fastq(path)) {
      output_ids.insert(rec.id);
      (is_lc ? lc_records : other_records) += 1;
    }
  }
  // Every input record appears exactly once in the output.
  std::multiset<std::string> input_ids;
  for (const auto& f : fixture.index.files) {
    for (const auto& rec : test::read_all_fastq(f)) input_ids.insert(rec.id);
  }
  EXPECT_EQ(output_ids, input_ids);
  // LC file record count = 2 * largest component (both mates).
  EXPECT_EQ(lc_records, 2 * r.largest_size);
  EXPECT_EQ(other_records, 2 * (r.num_reads - r.largest_size));
}

TEST(Pipeline, PairedEndsStayTogether) {
  Fixture fixture(15, 150, 5, 6);
  TempDir out_dir;
  auto cfg = base_config(15, out_dir.str());
  cfg.write_output = true;
  const auto r = run_metaprep(fixture.index, cfg);

  // Strip the /1 /2 suffix; each pair base name must land entirely in LC or
  // entirely in Other.
  std::map<std::string, std::set<bool>> pair_sides;
  for (const auto& path : r.output_files) {
    const bool is_lc = path.find(".lc.") != std::string::npos;
    for (const auto& rec : test::read_all_fastq(path)) {
      pair_sides[rec.id.substr(0, rec.id.size() - 2)].insert(is_lc);
    }
  }
  for (const auto& [base, sides] : pair_sides) {
    EXPECT_EQ(sides.size(), 1u) << "pair " << base << " split across partitions";
  }
}

class MergeStrategyTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeStrategyTest, ContractionMatchesPairwiseTree) {
  const int P = GetParam();
  static Fixture fixture(15, 220);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_ranks = P;
  cfg.threads_per_rank = 2;
  cfg.merge_strategy = MergeStrategy::kPairwiseTree;
  const auto tree = run_metaprep(fixture.index, cfg);
  cfg.merge_strategy = MergeStrategy::kContraction;
  const auto contraction = run_metaprep(fixture.index, cfg);
  EXPECT_EQ(test::normalize_partition(tree.labels),
            test::normalize_partition(contraction.labels));
  if (P > 1) {
    // Tree rounds ship full 4R-byte arrays; contraction ships 8 bytes per
    // locally-merged vertex.  Each non-root rank sends exactly once in both
    // strategies, so the tree total is (P-1) * 4R and the contraction total
    // is bounded by (P-1) * 8R.
    EXPECT_EQ(tree.merge_comm_bytes,
              static_cast<std::uint64_t>(P - 1) * 4ull * tree.num_reads);
    EXPECT_LE(contraction.merge_comm_bytes,
              static_cast<std::uint64_t>(P - 1) * 8ull * tree.num_reads);
    EXPECT_GT(contraction.merge_comm_bytes, 0u);
  } else {
    EXPECT_EQ(contraction.merge_comm_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MergeStrategyTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(Pipeline, ContractionWinsBytesOnSparseGraphs) {
  // Sparse regime (the one the paper's future-work citation [16] targets):
  // an aggressive frequency band leaves almost no read-graph edges, so most
  // reads stay singletons and the contracted (vertex, root) pairs are far
  // smaller than the full component arrays.
  Fixture fixture(15, 300);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_ranks = 4;
  cfg.filter.min_freq = 60;
  cfg.filter.max_freq = 70;  // ~3x coverage data: almost no k-mer this frequent
  cfg.merge_strategy = MergeStrategy::kPairwiseTree;
  const auto tree = run_metaprep(fixture.index, cfg);
  cfg.merge_strategy = MergeStrategy::kContraction;
  const auto contraction = run_metaprep(fixture.index, cfg);
  EXPECT_EQ(test::normalize_partition(tree.labels),
            test::normalize_partition(contraction.labels));
  EXPECT_LT(contraction.merge_comm_bytes, tree.merge_comm_bytes / 2);
}

TEST(Pipeline, TopNComponentOutputIsLosslessSplit) {
  Fixture fixture(15, 250, 5, 7, 6);
  TempDir out_dir;
  auto cfg = base_config(15, out_dir.str());
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.write_output = true;
  cfg.output_top_components = 3;
  const auto r = run_metaprep(fixture.index, cfg);

  // Records per suffix class.
  std::map<std::string, std::uint64_t> per_class;
  std::multiset<std::string> output_ids;
  for (const auto& path : r.output_files) {
    std::string cls = "other";
    for (int j = 0; j < 3; ++j) {
      if (path.find(".c" + std::to_string(j) + ".") != std::string::npos) {
        cls = "c" + std::to_string(j);
      }
    }
    for (const auto& rec : test::read_all_fastq(path)) {
      per_class[cls] += 1;
      output_ids.insert(rec.id);
    }
  }
  std::multiset<std::string> input_ids;
  for (const auto& f : fixture.index.files) {
    for (const auto& rec : test::read_all_fastq(f)) input_ids.insert(rec.id);
  }
  EXPECT_EQ(output_ids, input_ids);
  // c0 holds the largest component (2 records per read: both mates).
  EXPECT_EQ(per_class["c0"], 2 * r.largest_size);
  // Components are written in non-increasing size order.
  EXPECT_GE(per_class["c0"], per_class["c1"]);
  EXPECT_GE(per_class["c1"], per_class["c2"]);
  // Top-3 + other covers everything.
  std::uint64_t total = 0;
  for (const auto& [cls, n] : per_class) total += n;
  EXPECT_EQ(total, 2ull * r.num_reads);
}

TEST(Pipeline, TopNLargerThanComponentCountIsSafe) {
  Fixture fixture(15, 60, 5, 4, 2);
  TempDir out_dir;
  auto cfg = base_config(15, out_dir.str());
  cfg.write_output = true;
  cfg.output_top_components = 1000;  // far more than components exist
  const auto r = run_metaprep(fixture.index, cfg);
  std::uint64_t records = 0;
  for (const auto& path : r.output_files) records += test::read_all_fastq(path).size();
  EXPECT_EQ(records, 2ull * r.num_reads);
}

TEST(Pipeline, StepTimesPopulated) {
  Fixture fixture(15, 150);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  const auto r = run_metaprep(fixture.index, cfg);
  for (const char* step : {"KmerGen-I/O", "KmerGen", "KmerGen-Comm", "LocalSort", "LocalCC"}) {
    EXPECT_GT(r.step_times.map().count(step), 0u) << step;
  }
  // Multi-rank runs must include merge communication.
  EXPECT_GT(r.step_times.map().count("Merge-Comm"), 0u);
}

TEST(Pipeline, SortDigitWidthDoesNotChangeResult) {
  Fixture fixture(15, 200);
  std::vector<std::uint32_t> reference_labels;
  for (int digits : {4, 8, 11, 16}) {
    auto cfg = base_config(15, fixture.dir.str());
    cfg.num_ranks = 2;
    cfg.threads_per_rank = 2;
    cfg.sort_digit_bits = digits;
    const auto r = run_metaprep(fixture.index, cfg);
    const auto normalized = test::normalize_partition(r.labels);
    if (reference_labels.empty()) {
      reference_labels = normalized;
    } else {
      EXPECT_EQ(normalized, reference_labels) << "digits=" << digits;
    }
  }
}

TEST(Pipeline, PartitionIndependentOfChunkCount) {
  // The logical chunking is an implementation detail; the decomposition
  // must not depend on it.
  TempDir dir;
  sim::DatasetConfig dcfg;
  dcfg.name = "chunks";
  dcfg.genomes.num_species = 3;
  dcfg.genomes.min_genome_len = 3000;
  dcfg.genomes.max_genome_len = 5000;
  dcfg.num_pairs = 200;
  const auto ds = sim::simulate_dataset(dcfg, dir.file("chunks"));

  std::vector<std::uint32_t> reference_labels;
  for (std::uint32_t chunks : {2, 5, 16, 64}) {
    IndexCreateOptions opt;
    opt.k = 15;
    opt.m = 5;
    opt.target_chunks = chunks;
    const auto index = create_index("chunks", ds.files, true, opt);
    auto cfg = base_config(15, dir.str());
    cfg.num_ranks = 3;
    cfg.threads_per_rank = 2;
    const auto r = run_metaprep(index, cfg);
    const auto normalized = test::normalize_partition(r.labels);
    if (reference_labels.empty()) {
      reference_labels = normalized;
    } else {
      EXPECT_EQ(normalized, reference_labels) << "chunks=" << chunks;
    }
  }
}

TEST(Pipeline, PartitionIndependentOfHistogramM) {
  TempDir dir;
  sim::DatasetConfig dcfg;
  dcfg.name = "mval";
  dcfg.genomes.num_species = 3;
  dcfg.genomes.min_genome_len = 3000;
  dcfg.genomes.max_genome_len = 5000;
  dcfg.num_pairs = 150;
  const auto ds = sim::simulate_dataset(dcfg, dir.file("mval"));

  std::vector<std::uint32_t> reference_labels;
  for (int m : {3, 5, 7}) {
    IndexCreateOptions opt;
    opt.k = 15;
    opt.m = m;
    opt.target_chunks = 8;
    const auto index = create_index("mval", ds.files, true, opt);
    auto cfg = base_config(15, dir.str());
    cfg.num_ranks = 2;
    cfg.threads_per_rank = 2;
    cfg.num_passes = 2;
    const auto r = run_metaprep(index, cfg);
    const auto normalized = test::normalize_partition(r.labels);
    if (reference_labels.empty()) {
      reference_labels = normalized;
    } else {
      EXPECT_EQ(normalized, reference_labels) << "m=" << m;
    }
  }
}

TEST(Pipeline, SingleEndDatasetEndToEnd) {
  TempDir dir;
  // Two single-end files: reads 0-1 overlap each other, 2-3 overlap each
  // other, and nothing crosses the groups.
  const auto genome = sim::random_genome(4000, 31);
  test::write_fastq(dir.file("a.fastq"),
                    {genome.substr(0, 60), genome.substr(30, 60)}, "a");
  test::write_fastq(dir.file("b.fastq"),
                    {genome.substr(2000, 60), genome.substr(2030, 60)}, "b");
  IndexCreateOptions opt;
  opt.k = 21;
  opt.m = 4;
  opt.target_chunks = 4;
  const auto index =
      create_index("se", {dir.file("a.fastq"), dir.file("b.fastq")}, false, opt);
  ASSERT_EQ(index.total_reads, 4u);

  auto cfg = base_config(21, dir.str());
  cfg.num_ranks = 2;
  cfg.write_output = true;
  const auto r = run_metaprep(index, cfg);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(test::normalize_partition(r.labels),
            (std::vector<std::uint32_t>{0, 0, 2, 2}));
  // Output lossless for single-end too.
  std::uint64_t records = 0;
  for (const auto& f : r.output_files) records += test::read_all_fastq(f).size();
  EXPECT_EQ(records, 4u);
}

TEST(Pipeline, MultiLibraryPairedDataset) {
  // Two paired libraries (4 files); global read IDs must accumulate across
  // libraries and the partition must match the reference.
  TempDir dir;
  sim::DatasetConfig dcfg;
  dcfg.name = "lib1";
  dcfg.genomes.num_species = 2;
  dcfg.genomes.min_genome_len = 3000;
  dcfg.genomes.max_genome_len = 4000;
  dcfg.num_pairs = 80;
  const auto lib1 = sim::simulate_dataset(dcfg, dir.file("lib1"));
  dcfg.name = "lib2";
  dcfg.genomes.seed = 999;  // different community
  dcfg.reads.seed = 888;
  const auto lib2 = sim::simulate_dataset(dcfg, dir.file("lib2"));

  const std::vector<std::string> files{lib1.files[0], lib1.files[1], lib2.files[0],
                                       lib2.files[1]};
  IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 5;
  opt.target_chunks = 8;
  const auto index = create_index("multilib", files, true, opt);
  EXPECT_EQ(index.total_reads, 160u);

  auto cfg = base_config(15, dir.str());
  cfg.num_ranks = 3;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  const auto r = run_metaprep(index, cfg);
  const auto expected = reference_components(index, cfg.filter);
  EXPECT_EQ(test::normalize_partition(r.labels), test::normalize_partition(expected));
}

TEST(Pipeline, DeterministicAcrossRuns) {
  Fixture fixture(15, 200);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_ranks = 3;
  cfg.threads_per_rank = 3;
  const auto a = run_metaprep(fixture.index, cfg);
  const auto b = run_metaprep(fixture.index, cfg);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.total_tuples, b.total_tuples);
}

TEST(Pipeline, HandlesReadsShorterThanK) {
  // Reads shorter than k enumerate no k-mers: they must come out as
  // singletons, and the output must still be lossless.
  TempDir dir;
  const auto genome = sim::random_genome(2000, 41);
  test::write_fastq(dir.file("a.fastq"),
                    {genome.substr(0, 80), "ACGT", genome.substr(40, 80), "GG"});
  IndexCreateOptions opt;
  opt.k = 21;
  opt.m = 4;
  opt.target_chunks = 2;
  const auto index = create_index("short", {dir.file("a.fastq")}, false, opt);
  auto cfg = base_config(21, dir.str());
  cfg.write_output = true;
  const auto r = run_metaprep(index, cfg);
  // Reads 0 and 2 overlap; 1 and 3 are k-mer-free singletons.
  EXPECT_EQ(r.num_components, 3u);
  std::uint64_t records = 0;
  for (const auto& f : r.output_files) records += test::read_all_fastq(f).size();
  EXPECT_EQ(records, 4u);
}

TEST(Pipeline, HandlesAllNReads) {
  TempDir dir;
  const auto genome = sim::random_genome(1000, 43);
  test::write_fastq(dir.file("a.fastq"),
                    {std::string(60, 'N'), genome.substr(0, 60), std::string(60, 'N')});
  IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 4;
  const auto index = create_index("ns", {dir.file("a.fastq")}, false, opt);
  auto cfg = base_config(15, dir.str());
  const auto r = run_metaprep(index, cfg);
  EXPECT_EQ(r.num_components, 3u);  // every read isolated
}

TEST(Pipeline, EmptyFilterBandYieldsAllSingletons) {
  Fixture fixture(15, 100);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.filter.min_freq = 1'000'000;  // nothing is that frequent
  const auto r = run_metaprep(fixture.index, cfg);
  EXPECT_EQ(r.num_components, static_cast<std::uint64_t>(r.num_reads));
  EXPECT_EQ(r.largest_size, 1u);
}

TEST(Pipeline, DuplicateReadsCollapseIntoOneComponent) {
  TempDir dir;
  const auto genome = sim::random_genome(500, 47);
  const std::string read = genome.substr(0, 80);
  test::write_fastq(dir.file("a.fastq"), {read, read, read, read});
  IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 4;
  const auto index = create_index("dup", {dir.file("a.fastq")}, false, opt);
  auto cfg = base_config(15, dir.str());
  cfg.num_ranks = 2;
  const auto r = run_metaprep(index, cfg);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.largest_size, 4u);
}

TEST(Pipeline, TinyDatasetWithManyRanksAndPasses) {
  // More ranks/threads/passes than there is work: everything must degrade
  // gracefully to empty ranges.
  TempDir dir;
  const auto genome = sim::random_genome(300, 53);
  test::write_fastq(dir.file("a.fastq"), {genome.substr(0, 60), genome.substr(30, 60)});
  IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 3;
  opt.target_chunks = 1;
  const auto index = create_index("tiny", {dir.file("a.fastq")}, false, opt);
  auto cfg = base_config(15, dir.str());
  cfg.num_ranks = 8;
  cfg.threads_per_rank = 4;
  cfg.num_passes = 6;
  cfg.write_output = true;
  const auto r = run_metaprep(index, cfg);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.num_reads, 2u);
}

TEST(Pipeline, CorruptFastqFailsLoudly) {
  // A file truncated after indexing: KmerGen's chunk read must throw, the
  // failure must poison the world, and the caller must see the exception.
  TempDir dir;
  const auto genome = sim::random_genome(2000, 59);
  std::vector<std::string> reads;
  for (std::size_t pos = 0; pos + 60 <= genome.size(); pos += 30) {
    reads.push_back(genome.substr(pos, 60));
  }
  test::write_fastq(dir.file("a.fastq"), reads);
  IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 4;
  opt.target_chunks = 4;
  const auto index = create_index("corrupt", {dir.file("a.fastq")}, false, opt);
  // Truncate the file after the index was built.
  std::filesystem::resize_file(dir.file("a.fastq"),
                               std::filesystem::file_size(dir.file("a.fastq")) / 2);
  auto cfg = base_config(15, dir.str());
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  EXPECT_THROW(run_metaprep(index, cfg), std::runtime_error);
}

TEST(Pipeline, LongReadsMatchReference) {
  // 500 bp reads (PacBio-HiFi-ish length, error-free for simplicity).
  TempDir dir;
  sim::DatasetConfig dcfg;
  dcfg.name = "long";
  dcfg.genomes.num_species = 3;
  dcfg.genomes.min_genome_len = 4000;
  dcfg.genomes.max_genome_len = 6000;
  dcfg.num_pairs = 60;
  dcfg.reads.read_len = 500;
  dcfg.reads.insert_mean = 1100;
  dcfg.reads.insert_sd = 50;
  const auto ds = sim::simulate_dataset(dcfg, dir.file("long"));
  IndexCreateOptions opt;
  opt.k = 27;
  opt.m = 5;
  opt.target_chunks = 6;
  const auto index = create_index("long", ds.files, true, opt);
  auto cfg = base_config(27, dir.str());
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  const auto r = run_metaprep(index, cfg);
  const auto expected = reference_components(index, cfg.filter);
  EXPECT_EQ(test::normalize_partition(r.labels), test::normalize_partition(expected));
}

TEST(Pipeline, SimulatedCommTimeOnlyForMultiRank) {
  Fixture fixture(15, 150);
  auto cfg = base_config(15, fixture.dir.str());
  cfg.num_ranks = 1;
  const auto single = run_metaprep(fixture.index, cfg);
  EXPECT_DOUBLE_EQ(single.sim_comm_seconds, 0.0);
  cfg.num_ranks = 4;
  const auto multi = run_metaprep(fixture.index, cfg);
  EXPECT_GT(multi.sim_comm_seconds, 0.0);
}

}  // namespace
}  // namespace metaprep::core
