// Counting-Bloom prefilter tests: the structural guarantees the pipeline's
// singleton suppression leans on (never undercount, deterministic layout,
// bounded false-positive rate), plus the end-to-end leg proving a
// --comm-compress=bloom run produces the same partition as the uncompressed
// pipeline and the brute-force reference.
#include "kmer/bloom.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace metaprep::kmer {
namespace {

TEST(CountingBloom, EmptyFilterReportsZeroEverywhere) {
  const CountingBloom bloom(1000, 8, 2, 42);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(bloom.count(rng.next()), 0u);
}

TEST(CountingBloom, SizingIsPowerOfTwoWithFloor) {
  // next_pow2(expected * counters_per_key), floored at 4096 counters.
  EXPECT_EQ(CountingBloom(10, 8, 2, 1).num_counters(), 4096u);
  EXPECT_EQ(CountingBloom(1000, 8, 2, 1).num_counters(), 8192u);
  const CountingBloom b(20000, 8, 3, 9);
  EXPECT_EQ(b.num_counters() & (b.num_counters() - 1), 0u);
  EXPECT_GE(b.num_counters(), 20000u * 8u);
  EXPECT_EQ(b.memory_bytes(), b.num_counters());  // 1 byte per counter
  EXPECT_EQ(b.hashes(), 3);
  EXPECT_EQ(b.seed(), 9u);
}

TEST(CountingBloom, NeverUndercountsAndSaturatesAt255) {
  // The singleton-drop soundness argument: count() >= true insert count,
  // always.  A k-mer inserted twice can never report < 2, so a repeated
  // k-mer is never dropped; saturation keeps heavy k-mers at 255 (still
  // >= 2) instead of wrapping.
  CountingBloom bloom(500, 8, 2, 7);
  util::Xoshiro256 rng(2);
  std::map<std::uint64_t, std::uint32_t> truth;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t key = rng.next();
    const auto n = static_cast<std::uint32_t>(1 + rng.next_below(6));
    truth[key] += n;
    for (std::uint32_t j = 0; j < n; ++j) bloom.insert(key);
  }
  for (const auto& [key, n] : truth) EXPECT_GE(bloom.count(key), n);

  const std::uint64_t hot = 0xFEEDFACEULL;
  for (int i = 0; i < 300; ++i) bloom.insert(hot);
  EXPECT_EQ(bloom.count(hot), 255u);
}

TEST(CountingBloom, DeterministicAcrossInstancesWithTheSameSeed) {
  // The pipeline builds one filter per destination rank from (bloom_seed +
  // rank); every source inserting into the same filter must probe the same
  // positions, and a rebuilt filter must agree bit for bit.
  CountingBloom a(2000, 8, 2, 99);
  CountingBloom b(2000, 8, 2, 99);
  util::Xoshiro256 rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(rng.next());
  for (const auto key : keys) {
    a.insert(key);
    b.insert(key);
  }
  for (const auto key : keys) EXPECT_EQ(a.count(key), b.count(key));
  util::Xoshiro256 probe(4);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t q = probe.next();
    EXPECT_EQ(a.count(q), b.count(q));
  }
}

TEST(CountingBloom, FalsePositiveRateWithinTwiceTheAnalyticBound) {
  // Insert N distinct singletons; a "false positive" for the pipeline is a
  // singleton reporting count >= 2 (it gets *retained* — harmless for
  // correctness, it just ships bytes).  For h probes into m counters under
  // hN total increments, P(all h probes were also bumped by another key)
  // ~= (1 - e^(-hN/m))^h; the measured rate over 20k singletons must stay
  // within 2x of that (generous slack over sampling noise).
  constexpr std::uint64_t kN = 20000;
  constexpr int kCountersPerKey = 8;
  constexpr int kHashes = 2;
  CountingBloom bloom(kN, kCountersPerKey, kHashes, 1234);

  util::SplitMix64 gen(5);
  std::vector<std::uint64_t> keys;
  keys.reserve(kN);
  for (std::uint64_t i = 0; i < kN; ++i) keys.push_back(gen.next());
  for (const auto key : keys) bloom.insert(key);

  std::uint64_t retained = 0;
  for (const auto key : keys) {
    if (bloom.count(key) >= 2) ++retained;
  }
  const double m = static_cast<double>(bloom.num_counters());
  const double fill = 1.0 - std::exp(-static_cast<double>(kHashes * kN) / m);
  const double analytic = std::pow(fill, kHashes);
  const double measured = static_cast<double>(retained) / static_cast<double>(kN);
  EXPECT_LE(measured, 2.0 * analytic) << "analytic " << analytic;

  // Fresh keys must mostly read 0 under the same bound (min over probes).
  util::SplitMix64 fresh(6);
  std::uint64_t nonzero = 0;
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (bloom.count(fresh.next()) > 0) ++nonzero;
  }
  EXPECT_LE(static_cast<double>(nonzero) / static_cast<double>(kN), 2.0 * analytic);
}

// ---------------------------------------------------------------------------
// End-to-end: the Bloom prefilter must only suppress singletons, so a
// --comm-compress=bloom run produces exactly the uncompressed partition.

TEST(CountingBloomPipeline, BloomRunMatchesUncompressedOracle) {
  test::TempDir dir;
  sim::DatasetConfig scfg;
  scfg.name = "bloom";
  scfg.genomes.num_species = 3;
  scfg.genomes.min_genome_len = 2000;
  scfg.genomes.max_genome_len = 3500;
  scfg.num_pairs = 150;
  scfg.reads.seed = 515;  // default error_rate 0.004 -> singleton k-mers exist
  const auto dataset = sim::simulate_dataset(scfg, dir.file("bloom"));
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 5;
  opt.target_chunks = 6;
  const auto index = core::create_index("bloom", dataset.files, true, opt);

  core::MetaprepConfig cfg;
  cfg.k = opt.k;
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  cfg.write_output = false;
  const auto plain = core::run_metaprep(index, cfg);

  cfg.comm_compress = core::CommCompress::kBloom;
  const auto bloom = core::run_metaprep(index, cfg);

  EXPECT_EQ(bloom.num_reads, plain.num_reads);
  EXPECT_EQ(bloom.num_components, plain.num_components);
  EXPECT_EQ(test::normalize_partition(bloom.labels), test::normalize_partition(plain.labels));
  // The filter actually fired: sequencing errors guarantee singletons, and
  // suppressed occurrences shrink the tuple stream.
  EXPECT_GT(bloom.bloom_dropped, 0u);
  EXPECT_LT(bloom.total_tuples, plain.total_tuples);
  EXPECT_LE(bloom.exchange_bytes, bloom.exchange_bytes_raw);
  // Both also agree with the brute-force reference components.
  const auto ref = core::reference_components(index, cfg.filter);
  EXPECT_EQ(test::normalize_partition(bloom.labels), test::normalize_partition(ref));
}

}  // namespace
}  // namespace metaprep::kmer
