// metaprep-lint: lexer and rule-engine tests, driven both by inline sources
// and by the seeded-violation / clean corpus under tests/lint_fixtures/.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace {

using metaprep::lint::Finding;
using metaprep::lint::lex;
using metaprep::lint::run_rules;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(METAPREP_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> lint_fixture(const std::string& name) {
  return run_rules("tests/lint_fixtures/" + name, read_fixture(name));
}

/// "rule@line" labels for compact whole-result assertions.
std::vector<std::string> labels(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings)
    out.push_back(f.rule + "@" + std::to_string(f.line));
  return out;
}

// --- lexer ----------------------------------------------------------------

TEST(LintLexer, SplitsCodeAndComment) {
  const auto lines = lex("int x = 1;  // trailing note\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.substr(0, 10), "int x = 1;");
  EXPECT_EQ(lines[0].code.find("trailing"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("trailing note"), std::string::npos);
}

TEST(LintLexer, BlanksStringContentsButKeepsQuotes) {
  const auto lines = lex("auto s = \"throw std::runtime_error\";\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("runtime_error"), std::string::npos);
  EXPECT_NE(lines[0].code.find('"'), std::string::npos);
  // Columns are preserved: the terminating `;` stays at its source column.
  EXPECT_EQ(lines[0].code.size(), std::string("auto s = \"throw std::runtime_error\";").size());
}

TEST(LintLexer, EscapedQuoteDoesNotCloseString) {
  const auto lines = lex("auto s = \"a\\\"b std::mutex\";\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("std::mutex"), std::string::npos);
}

TEST(LintLexer, BlockCommentSpansLines) {
  const auto lines = lex("int a; /* std::mutex\n getenv(\"X\") */ int b;\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].code.find("std::mutex"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("getenv"), std::string::npos);
  EXPECT_NE(lines[1].code.find("int b;"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("std::mutex"), std::string::npos);
}

TEST(LintLexer, RawStringWithDelimiter) {
  const auto lines = lex("auto s = R\"x(new Widget() )\" )x\";\nint tail;\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].code.find("Widget"), std::string::npos);
  // The inner `)"` must not terminate the raw string early.
  EXPECT_NE(lines[1].code.find("int tail;"), std::string::npos);
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  const auto lines = lex("auto n = 1'000'000; // std::mutex\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].code.find("1'000'000"), std::string::npos);
  EXPECT_EQ(lines[0].code.find("std::mutex"), std::string::npos);
}

TEST(LintLexer, CharLiteralWithQuoteInside) {
  const auto lines = lex("char q = '\"'; auto s = \"std::mutex\";\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("std::mutex"), std::string::npos);
}

// --- seeded-violation fixtures --------------------------------------------

TEST(LintFixtures, AdhocThrow) {
  EXPECT_EQ(labels(lint_fixture("bad_adhoc_throw.cpp")),
            std::vector<std::string>{"metaprep-no-adhoc-throw@5"});
}

TEST(LintFixtures, NakedNew) {
  EXPECT_EQ(labels(lint_fixture("bad_naked_new.cpp")),
            std::vector<std::string>{"metaprep-no-naked-new@7"});
}

TEST(LintFixtures, MissingPragmaOnce) {
  EXPECT_EQ(labels(lint_fixture("bad_missing_pragma.hpp")),
            std::vector<std::string>{"metaprep-pragma-once@1"});
}

TEST(LintFixtures, UsingNamespaceHeader) {
  EXPECT_EQ(labels(lint_fixture("bad_using_namespace.hpp")),
            std::vector<std::string>{"metaprep-no-using-namespace-header@5"});
}

TEST(LintFixtures, LockUnannotated) {
  EXPECT_EQ(labels(lint_fixture("bad_lock_unannotated.hpp")),
            std::vector<std::string>{"metaprep-lock-unannotated@13"});
}

TEST(LintFixtures, RawMutex) {
  EXPECT_EQ(labels(lint_fixture("bad_raw_mutex.cpp")),
            (std::vector<std::string>{"metaprep-no-raw-mutex@4",
                                      "metaprep-no-raw-mutex@7"}));
}

TEST(LintFixtures, EnvOutsideConfig) {
  EXPECT_EQ(labels(lint_fixture("bad_env.cpp")),
            std::vector<std::string>{"metaprep-no-env-outside-config@5"});
}

TEST(LintFixtures, NolintUnjustified) {
  // The suppression still works (no naked-new finding); the missing ": why"
  // is the one finding left.
  EXPECT_EQ(labels(lint_fixture("bad_nolint_unjustified.cpp")),
            std::vector<std::string>{"metaprep-nolint-justified@5"});
}

TEST(LintFixtures, CleanTrickyIsClean) {
  EXPECT_EQ(labels(lint_fixture("clean_tricky.cpp")), std::vector<std::string>{});
}

TEST(LintFixtures, CleanHeaderIsClean) {
  EXPECT_EQ(labels(lint_fixture("clean_header.hpp")), std::vector<std::string>{});
}

// --- rule-engine behaviors on inline sources ------------------------------

TEST(LintRules, ExemptFilesAreSkipped) {
  EXPECT_TRUE(run_rules("src/util/sync.hpp",
                        "#pragma once\nstd::mutex mu_;\n")
                  .empty());
  EXPECT_TRUE(run_rules("src/util/env.hpp",
                        "#pragma once\nauto* v = std::getenv(\"X\");\n")
                  .empty());
  EXPECT_TRUE(run_rules("src/util/error.cpp",
                        "void f() { throw std::runtime_error(\"x\"); }\n")
                  .empty());
  // The same contents elsewhere do fire.
  EXPECT_EQ(run_rules("src/core/x.cpp",
                      "void f() { throw std::runtime_error(\"x\"); }\n")
                .size(),
            1u);
}

TEST(LintRules, HeaderOnlyRulesIgnoreSources) {
  const std::string src = "using namespace std;\nint x;\n";
  EXPECT_TRUE(run_rules("src/a.cpp", src).empty());  // no pragma/using rules
  const auto found = run_rules("src/a.hpp", src);
  ASSERT_EQ(found.size(), 2u);  // missing pragma once + using-directive
}

TEST(LintRules, NolintOnPreviousLineSuppresses) {
  const std::string src =
      "// NOLINT(metaprep-no-naked-new): singleton\n"
      "auto* p = new int(1);\n";
  EXPECT_TRUE(run_rules("src/a.cpp", src).empty());
}

TEST(LintRules, NolintNextlineDoesNotCoverItsOwnLine) {
  const std::string src =
      "auto* p = new int(1);  // NOLINTNEXTLINE(metaprep-no-naked-new): wrong form\n";
  const auto found = run_rules("src/a.cpp", src);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "metaprep-no-naked-new");
}

TEST(LintRules, NolintListCoversMultipleRules) {
  const std::string src =
      "auto* p = new int(1);  "
      "// NOLINT(metaprep-no-naked-new, metaprep-no-adhoc-throw): both\n";
  EXPECT_TRUE(run_rules("src/a.cpp", src).empty());
}

TEST(LintRules, NolintInStringDoesNotSuppress) {
  const std::string src =
      "auto* s = \"NOLINT(metaprep-no-naked-new): nope\";\n"
      "auto* p = new int(1);\n";
  const auto found = run_rules("src/a.cpp", src);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "metaprep-no-naked-new");
  EXPECT_EQ(found[0].line, 2);
}

TEST(LintRules, ProseNolintWithoutParensIsInert) {
  EXPECT_TRUE(run_rules("src/a.cpp",
                        "// Suppressions use NOLINT markers with a rule list.\n"
                        "int x;\n")
                  .empty());
}

TEST(LintRules, LockUnannotatedSeesGuardedMembers) {
  const std::string bad =
      "class C {\n"
      "  util::Mutex mutex_;\n"
      "  int x_ = 0;\n"
      "};\n";
  const auto found = run_rules("src/a.hpp", bad);
  // pragma-once fires too; filter to the lock rule.
  EXPECT_EQ(std::count_if(found.begin(), found.end(),
                          [](const Finding& f) {
                            return f.rule == "metaprep-lock-unannotated";
                          }),
            1);

  const std::string good =
      "#pragma once\n"
      "class C {\n"
      "  util::Mutex mutex_;\n"
      "  int x_ GUARDED_BY(mutex_) = 0;\n"
      "};\n";
  EXPECT_TRUE(run_rules("src/a.hpp", good).empty());
}

TEST(LintRules, LockUnannotatedHandlesNestedClasses) {
  // The inner struct is annotated; the outer class's mutex guards nothing.
  const std::string src =
      "#pragma once\n"
      "class Outer {\n"
      "  struct Inner {\n"
      "    util::Mutex mu;\n"
      "    int q GUARDED_BY(mu) = 0;\n"
      "  };\n"
      "  util::SharedMutex mutex_;\n"
      "  int naked_ = 0;\n"
      "};\n";
  const auto found = run_rules("src/a.hpp", src);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "metaprep-lock-unannotated");
  EXPECT_EQ(found[0].line, 7);
}

TEST(LintRules, RuleNamesListsAllEight) {
  EXPECT_EQ(metaprep::lint::rule_names().size(), 8u);
}

}  // namespace
