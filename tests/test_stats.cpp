// Tests for component-decomposition statistics.
#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace metaprep::core {
namespace {

// Labels: component = label value; {0,0,0,1,1,2} = sizes 3,2,1.
const std::vector<std::uint32_t> kSample{0, 0, 0, 1, 1, 2};

TEST(ComponentStats, SummaryBasics) {
  const auto s = summarize_components(kSample);
  EXPECT_EQ(s.num_reads, 6u);
  EXPECT_EQ(s.num_components, 3u);
  EXPECT_EQ(s.largest, 3u);
  EXPECT_DOUBLE_EQ(s.largest_fraction, 0.5);
  EXPECT_EQ(s.singletons, 1u);
  EXPECT_EQ(s.sizes_desc, (std::vector<std::uint64_t>{3, 2, 1}));
}

TEST(ComponentStats, EntropyMatchesHandComputation) {
  const auto s = summarize_components(kSample);
  const double expected = -(0.5 * std::log2(0.5) + (2.0 / 6) * std::log2(2.0 / 6) +
                            (1.0 / 6) * std::log2(1.0 / 6));
  EXPECT_NEAR(s.entropy_bits, expected, 1e-12);
}

TEST(ComponentStats, SingleComponentHasZeroEntropy) {
  const std::vector<std::uint32_t> all_same(10, 7);
  const auto s = summarize_components(all_same);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_DOUBLE_EQ(s.largest_fraction, 1.0);
  EXPECT_NEAR(s.entropy_bits, 0.0, 1e-12);
}

TEST(ComponentStats, AllSingletonsMaximizeEntropy) {
  std::vector<std::uint32_t> labels(16);
  std::iota(labels.begin(), labels.end(), 0u);
  const auto s = summarize_components(labels);
  EXPECT_EQ(s.singletons, 16u);
  EXPECT_NEAR(s.entropy_bits, 4.0, 1e-12);  // log2(16)
}

TEST(ComponentStats, EmptyLabels) {
  const auto s = summarize_components(std::vector<std::uint32_t>{});
  EXPECT_EQ(s.num_reads, 0u);
  EXPECT_EQ(s.num_components, 0u);
}

TEST(ComponentStats, Log2Histogram) {
  // sizes 3, 2, 1 -> buckets: 1 (3 -> [2,4)), 1 (2 -> [2,4)), 0 (1 -> [1,2)).
  const auto hist = size_histogram_log2(kSample);
  EXPECT_EQ(hist.at(0), 1u);
  EXPECT_EQ(hist.at(1), 2u);
  EXPECT_EQ(hist.size(), 2u);
}

TEST(ComponentStats, PackComponentsBalances) {
  // sizes 4, 3, 2, 1 onto 2 bins: LPT gives {4,1}=5 and {3,2}=5.
  std::vector<std::uint32_t> labels;
  for (int i = 0; i < 4; ++i) labels.push_back(0);
  for (int i = 0; i < 3; ++i) labels.push_back(1);
  for (int i = 0; i < 2; ++i) labels.push_back(2);
  labels.push_back(3);
  auto loads = pack_components(labels, 2);
  std::sort(loads.begin(), loads.end());
  EXPECT_EQ(loads, (std::vector<std::uint64_t>{5, 5}));
}

TEST(ComponentStats, PackGiantComponentIsImbalanced) {
  std::vector<std::uint32_t> labels(100, 0);  // one giant component
  labels[99] = 1;
  const auto loads = pack_components(labels, 4);
  std::uint64_t mx = 0, total = 0;
  for (auto l : loads) {
    mx = std::max(mx, l);
    total += l;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(mx, 99u);  // one assembler gets nearly everything
}

TEST(ComponentStats, PackRejectsZeroBins) {
  EXPECT_THROW(pack_components(kSample, 0), std::invalid_argument);
}

TEST(ComponentStats, ReportMentionsKeyNumbers) {
  const auto report = component_report(summarize_components(kSample));
  EXPECT_NE(report.find("6 reads"), std::string::npos);
  EXPECT_NE(report.find("3 components"), std::string::npos);
  EXPECT_NE(report.find("50"), std::string::npos);  // 50%
}

}  // namespace
}  // namespace metaprep::core
