// Tests for the robustness layer: typed errors, retry-with-backoff, and
// deterministic fault injection (ISSUE acceptance criteria: a seeded plan of
// transient read faults completes via retries with labels identical to the
// fault-free run; corrupted chunks in lenient mode complete with the skip
// count matching the injected count; strict mode raises a typed Error naming
// file, offset, and category).
#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "io/fastq.hpp"
#include "mpsim/comm.hpp"
#include "obs/metrics.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"

namespace metaprep {
namespace {

using test::TempDir;
using util::FaultPlan;
using util::FaultPlanConfig;
using util::ScopedFaultPlan;

// ---------------------------------------------------------------------------
// util::Error

TEST(Error, CarriesStructuredContext) {
  const util::Error e = util::io_error("short read", "/data/a.fastq", 4096, EINTR, true);
  EXPECT_EQ(e.category(), util::ErrorCategory::kIo);
  EXPECT_EQ(e.path(), "/data/a.fastq");
  EXPECT_TRUE(e.has_offset());
  EXPECT_EQ(e.offset(), 4096u);
  EXPECT_EQ(e.sys_errno(), EINTR);
  EXPECT_TRUE(e.transient());
  EXPECT_EQ(e.detail(), "short read");
  const std::string what = e.what();
  EXPECT_NE(what.find("/data/a.fastq"), std::string::npos);
  EXPECT_NE(what.find("4096"), std::string::npos);
  EXPECT_NE(what.find("io"), std::string::npos);
}

TEST(Error, IsARuntimeError) {
  // Existing catch sites and EXPECT_THROW(..., std::runtime_error) tests
  // must keep working.
  EXPECT_THROW(throw util::parse_error("bad record"), std::runtime_error);
  EXPECT_THROW(throw util::comm_error("poisoned"), std::runtime_error);
  EXPECT_THROW(throw util::config_error("bad flag"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// with_retries

TEST(Retry, SucceedsAfterTransientFailures) {
  int calls = 0;
  int retries = 0;
  const int result = util::with_retries(
      util::RetryPolicy{},
      [&] {
        if (++calls < 3) throw util::io_error("flaky", "f", 0, EINTR, true);
        return 42;
      },
      [&](int, const util::Error&) { ++retries; });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
}

TEST(Retry, NonTransientPropagatesImmediately) {
  int calls = 0;
  EXPECT_THROW(util::with_retries(util::RetryPolicy{},
                                  [&]() -> int {
                                    ++calls;
                                    throw util::io_error("disk gone", "f", 0, EIO, false);
                                  }),
               util::Error);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, ExhaustionRethrowsLastError) {
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(1);
  int calls = 0;
  EXPECT_THROW(util::with_retries(policy,
                                  [&]() -> int {
                                    ++calls;
                                    throw util::io_error("always", "f", 0, EINTR, true);
                                  }),
               util::Error);
  EXPECT_EQ(calls, 3);
}

// ---------------------------------------------------------------------------
// FaultPlan

TEST(FaultPlan, DisarmedInjectsNothing) {
  FaultPlan& plan = FaultPlan::global();
  plan.disarm();
  EXPECT_FALSE(plan.armed());
  EXPECT_FALSE(plan.inject_read_fault("x", 0));
  EXPECT_FALSE(plan.inject_comm_drop());
}

TEST(FaultPlan, ReadFaultDecisionsAreSiteKeyedAndSeedDeterministic) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.transient_read_rate = 0.5;
  cfg.transient_failures_per_site = 1;
  auto sample = [&]() {
    ScopedFaultPlan scoped(cfg);
    std::vector<bool> out;
    for (std::uint64_t off = 0; off < 64; ++off) {
      out.push_back(FaultPlan::global().inject_read_fault("a.fastq", off * 1000));
    }
    return out;
  };
  const auto first = sample();
  const auto second = sample();
  EXPECT_EQ(first, second);  // same seed -> identical decisions
  std::size_t fired = 0;
  for (bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, first.size());
  cfg.seed = 8;
  EXPECT_NE(sample(), first);  // a different seed moves the faults
}

TEST(FaultPlan, ReadSitesHealAfterConfiguredFailures) {
  FaultPlanConfig cfg;
  cfg.transient_read_rate = 1.0;
  cfg.transient_failures_per_site = 2;
  ScopedFaultPlan scoped(cfg);
  FaultPlan& plan = FaultPlan::global();
  EXPECT_TRUE(plan.inject_read_fault("a", 0));
  EXPECT_TRUE(plan.inject_read_fault("a", 0));
  EXPECT_FALSE(plan.inject_read_fault("a", 0));  // healed
  EXPECT_TRUE(plan.inject_read_fault("a", 512));  // distinct site
  EXPECT_EQ(plan.counters().read_faults, 3u);
}

TEST(FaultPlan, CorruptionIsDeterministicPerSite) {
  const std::string clean = "@a\nACGT\n+\nIIII\n@b\nGGGG\n+\nIIII\n";
  FaultPlanConfig cfg;
  cfg.corrupt_rate = 1.0;
  auto corrupt_once = [&]() {
    std::vector<char> buf(clean.begin(), clean.end());
    EXPECT_TRUE(FaultPlan::global().corrupt_fastq_chunk("a.fastq", 0,
                                                        std::span<char>(buf.data(), buf.size())));
    return std::string(buf.data(), buf.size());
  };
  ScopedFaultPlan scoped(cfg);
  const std::string first = corrupt_once();
  const std::string second = corrupt_once();
  EXPECT_EQ(first, second);  // re-reads of a chunk see identical damage
  EXPECT_NE(first, clean);
  // Exactly one byte differs: a record's '@' flipped to '#'.
  std::size_t diffs = 0, at = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (first[i] != clean[i]) { ++diffs; at = i; }
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(clean[at], '@');
  EXPECT_EQ(first[at], '#');
}

// ---------------------------------------------------------------------------
// Faults through the I/O layer

TEST(FaultIo, ReadFileRangeRetriesTransientFaults) {
  TempDir dir;
  const std::string path = test::write_fastq(dir.file("a.fastq"), {"ACGTACGT", "TTTTCCCC"});
  const std::uint64_t size = io::file_size_bytes(path);
  const auto clean = io::read_file_range(path, 0, size);

  FaultPlanConfig cfg;
  cfg.transient_read_rate = 1.0;    // every site faults...
  cfg.transient_failures_per_site = 2;  // ...twice, below max_attempts=5
  ScopedFaultPlan scoped(cfg);
  const auto faulted = io::read_file_range(path, 0, size);
  EXPECT_EQ(faulted, clean);  // retries win; content identical
  EXPECT_EQ(FaultPlan::global().counters().read_faults, 2u);
}

TEST(FaultIo, ReadFileRangeExhaustionThrowsTypedTransientError) {
  TempDir dir;
  const std::string path = test::write_fastq(dir.file("a.fastq"), {"ACGT"});
  FaultPlanConfig cfg;
  cfg.transient_read_rate = 1.0;
  cfg.transient_failures_per_site = 100;  // never heals within max_attempts
  ScopedFaultPlan scoped(cfg);
  try {
    io::read_file_range(path, 0, io::file_size_bytes(path));
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kIo);
    EXPECT_EQ(e.path(), path);
    EXPECT_TRUE(e.transient());
  }
}

TEST(FaultIo, RetriesAreCountedInMetrics) {
  TempDir dir;
  const std::string path = test::write_fastq(dir.file("a.fastq"), {"ACGTACGT"});
  obs::metrics().set_enabled(true);
  obs::Counter& retries = obs::metrics().counter("io.retries");
  const std::uint64_t before = retries.value();
  FaultPlanConfig cfg;
  cfg.transient_read_rate = 1.0;
  cfg.transient_failures_per_site = 1;
  {
    ScopedFaultPlan scoped(cfg);
    io::read_file_range(path, 0, io::file_size_bytes(path));
  }
  EXPECT_EQ(retries.value() - before, 1u);
  obs::metrics().set_enabled(false);
}

TEST(FaultIo, CorruptedChunkStrictThrowsNamedParseError) {
  TempDir dir;
  const std::string path =
      test::write_fastq(dir.file("a.fastq"), {"ACGTACGT", "GGGGTTTT", "CCCCAAAA"});
  const std::uint64_t size = io::file_size_bytes(path);
  FaultPlanConfig cfg;
  cfg.corrupt_rate = 1.0;
  ScopedFaultPlan scoped(cfg);
  const auto buf = io::read_file_range(path, 0, size);
  EXPECT_EQ(FaultPlan::global().counters().chunks_corrupted, 1u);
  try {
    io::for_each_record_in_buffer(
        std::string_view(buf.data(), buf.size()),
        [](std::string_view, std::string_view, std::string_view) {},
        io::ParseOptions{io::ParseMode::kStrict, path, 0});
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kParse);
    EXPECT_EQ(e.path(), path);
    EXPECT_TRUE(e.has_offset());
  }
}

TEST(FaultIo, CorruptedChunkLenientSkipsExactlyOneRecord) {
  TempDir dir;
  const std::string path =
      test::write_fastq(dir.file("a.fastq"), {"ACGTACGT", "GGGGTTTT", "CCCCAAAA"});
  const std::uint64_t size = io::file_size_bytes(path);
  FaultPlanConfig cfg;
  cfg.corrupt_rate = 1.0;
  ScopedFaultPlan scoped(cfg);
  const auto buf = io::read_file_range(path, 0, size);
  std::size_t records = 0;
  const auto stats = io::for_each_record_in_buffer(
      std::string_view(buf.data(), buf.size()),
      [&](std::string_view, std::string_view, std::string_view) { ++records; },
      io::ParseOptions{io::ParseMode::kLenient, path, 0});
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(records, 2u);
}

// ---------------------------------------------------------------------------
// Faults through mpsim

TEST(FaultComm, DropExhaustionThrowsTransientCommError) {
  mpsim::World world(1);
  FaultPlanConfig cfg;
  cfg.comm_drop_rate = 1.0;  // every retransmission drops too
  ScopedFaultPlan scoped(cfg);
  try {
    world.run([](mpsim::Comm& comm) {
      int v = 1;
      comm.send(0, 1, &v, sizeof(v));
    });
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kComm);
    EXPECT_TRUE(e.transient());
  }
  EXPECT_EQ(FaultPlan::global().counters().comm_drops, 5u);  // max_attempts
}

TEST(FaultComm, DroppedMessagesAreRetransmittedExactlyOnce) {
  // Single rank, so the per-message sequence numbers (and hence the drop
  // decisions) are fully deterministic for a given seed: with drops below
  // the retry budget every message arrives exactly once, in order, with
  // correct content.
  mpsim::World world(1);
  FaultPlanConfig cfg;
  cfg.comm_drop_rate = 0.2;
  cfg.seed = 11;
  ScopedFaultPlan scoped(cfg);
  world.run([](mpsim::Comm& comm) {
    for (int round = 0; round < 64; ++round) {
      int payload = round * 7;
      comm.send(0, round, &payload, sizeof(payload));
      int got = -1;
      comm.recv(0, round, &got, sizeof(got));
      ASSERT_EQ(got, round * 7);
    }
  });
  EXPECT_GT(FaultPlan::global().counters().comm_drops, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end pipeline acceptance

struct SmallDataset {
  TempDir dir;
  core::DatasetIndex index;
  core::MetaprepConfig config;

  SmallDataset() {
    // Two overlapping families of reads plus a singleton: a few components,
    // enough records (24) that every chunk holds several.
    std::vector<std::string> reads;
    for (int i = 0; i < 10; ++i) reads.push_back("ACGTACGTACGTACGTACGTACGT");
    for (int i = 0; i < 10; ++i) reads.push_back("TTGGCCAATTGGCCAATTGGCCAA");
    for (int i = 0; i < 4; ++i) reads.push_back(std::string(24, "GACT"[i]));
    test::write_fastq(dir.file("reads.fastq"), reads);
    core::IndexCreateOptions opt;
    opt.k = 15;
    opt.m = 4;
    opt.target_chunks = 6;
    index = core::create_index("faults", {dir.file("reads.fastq")}, false, opt);
    config.k = opt.k;
    config.num_ranks = 2;
    config.threads_per_rank = 2;
    config.num_passes = 2;
    config.write_output = false;
  }
};

TEST(FaultPipeline, TransientReadFaultsGiveIdenticalLabels) {
  SmallDataset d;
  const auto baseline = core::run_metaprep(d.index, d.config);

  FaultPlanConfig cfg;
  cfg.transient_read_rate = 0.05;  // ISSUE acceptance: 5% of reads fault
  cfg.transient_failures_per_site = 2;
  cfg.seed = 3;
  ScopedFaultPlan scoped(cfg);
  const auto faulted = core::run_metaprep(d.index, d.config);
  EXPECT_EQ(faulted.labels, baseline.labels);  // retries leave no trace
  EXPECT_EQ(faulted.num_components, baseline.num_components);
}

TEST(FaultPipeline, CorruptChunksStrictModeRaisesTypedError) {
  SmallDataset d;
  FaultPlanConfig cfg;
  cfg.corrupt_rate = 1.0;
  ScopedFaultPlan scoped(cfg);
  EXPECT_THROW(core::run_metaprep(d.index, d.config), util::Error);
}

TEST(FaultPipeline, CorruptChunksLenientModeCompletesWithCountedSkips) {
  SmallDataset d;
  d.config.parse_mode = io::ParseMode::kLenient;
  obs::metrics().set_enabled(true);
  obs::Counter& skipped = obs::metrics().counter("io.records_skipped");
  const std::uint64_t skipped_before = skipped.value();

  FaultPlanConfig cfg;
  // The corruption draw hashes (seed, path, offset) and TempDir randomizes
  // the path, so the hit count varies run to run; at 0.5 a ~6-site dataset
  // rolls zero corruptions in ~2% of runs.  0.95 keeps the assertion below
  // meaningful while making an all-miss run (0.05^6) effectively impossible.
  cfg.corrupt_rate = 0.95;
  cfg.seed = 5;
  ScopedFaultPlan scoped(cfg);
  const auto result = core::run_metaprep(d.index, d.config);
  obs::metrics().set_enabled(false);

  const auto fc = FaultPlan::global().counters();
  EXPECT_GT(fc.chunks_corrupted, 0u);
  // Each corrupted buffer read loses exactly one record to resync, so the
  // skip metric equals the injected corruption count.
  EXPECT_EQ(skipped.value() - skipped_before, fc.chunks_corrupted);
  // Degraded but labeled: the run completes with every read labeled.
  EXPECT_EQ(result.num_reads, d.index.total_reads);
  EXPECT_EQ(result.labels.size(), d.index.total_reads);
}

TEST(FaultPipeline, LenientSkipsDoNotDriftOutputLabels) {
  // Regression: in lenient mode the CC-I/O writers derive each record's read
  // ID from a cursor that starts at the chunk's first_read_id.  The chunk
  // table counted every record — including ones the parser later abandons —
  // so a resynchronization must advance the cursor too.  Before the
  // ParseOptions::on_skip hook, every record after a skip inherited its
  // predecessor's ID and was routed to the wrong output file.
  //
  // Reads alternate between two k-mer-disjoint families, so an off-by-one
  // read ID lands in the *other* family's component and the misrouting is
  // visible in the partitioned output.
  TempDir dir;
  std::vector<std::string> reads;
  for (int i = 0; i < 12; ++i) {
    reads.push_back(i % 2 == 0 ? "ACGTACGTACGTACGTACGTACGT" : "TTGGCCAATTGGCCAATTGGCCAA");
  }
  for (int i = 0; i < 10; ++i) reads.push_back("ACGTACGTACGTACGTACGTACGT");
  test::write_fastq(dir.file("reads.fastq"), reads);
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 4;
  opt.target_chunks = 6;
  const auto index = core::create_index("drift", {dir.file("reads.fastq")}, false, opt);

  core::MetaprepConfig cfg;
  cfg.k = opt.k;
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  cfg.parse_mode = io::ParseMode::kLenient;
  cfg.write_output = true;
  cfg.output_dir = dir.str();

  FaultPlanConfig fp;
  fp.corrupt_rate = 1.0;  // every chunk read loses exactly one record
  fp.seed = 11;
  ScopedFaultPlan scoped(fp);

  // Corruption decisions are site-keyed, so the brute-force oracle sees the
  // identical degraded input and yields per-read-ID ground-truth labels.
  const auto oracle = core::reference_components(index, cfg.filter, cfg.parse_mode);
  const auto result = core::run_metaprep(index, cfg);
  ASSERT_GT(FaultPlan::global().counters().chunks_corrupted, 0u);

  std::map<std::uint32_t, std::uint64_t> oracle_sizes;
  for (auto l : oracle) ++oracle_sizes[l];
  std::uint32_t largest_root = 0;
  std::uint64_t largest_size = 0;
  for (const auto& [root, size] : oracle_sizes) {
    if (size > largest_size) {
      largest_root = root;
      largest_size = size;
    }
  }
  ASSERT_GT(largest_size, 1u);

  // Every surviving record must land in the file matching its oracle label:
  // members of the largest component in ".lc", everything else in ".other".
  std::size_t checked = 0;
  for (const auto& path : result.output_files) {
    const bool lc_file = path.find(".lc.fastq") != std::string::npos;
    for (const auto& rec : test::read_all_fastq(path)) {
      const std::uint32_t id =
          static_cast<std::uint32_t>(std::stoul(rec.id.substr(1)));  // "r<i>"
      ASSERT_LT(id, oracle.size());
      EXPECT_EQ(oracle[id] == largest_root, lc_file)
          << "read r" << id << " misrouted to " << path;
      ++checked;
    }
  }
  // CC-I/O reads each chunk once and each corrupted read loses exactly one
  // record, so the output holds all reads minus one per chunk.
  EXPECT_EQ(checked, index.total_reads - index.part.num_chunks());
}

TEST(FaultPipeline, CommDropsAndDelaysDoNotChangeResults) {
  SmallDataset d;
  d.config.num_ranks = 4;  // more ranks -> enough messages that faults fire
  const auto baseline = core::run_metaprep(d.index, d.config);

  FaultPlanConfig cfg;
  cfg.comm_drop_rate = 0.05;
  cfg.comm_delay_rate = 0.3;
  cfg.comm_delay = std::chrono::microseconds(50);
  cfg.seed = 9;
  ScopedFaultPlan scoped(cfg);
  const auto faulted = core::run_metaprep(d.index, d.config);
  EXPECT_EQ(faulted.labels, baseline.labels);
  const auto fc = FaultPlan::global().counters();
  EXPECT_GT(fc.comm_drops + fc.comm_delays, 0u);
}

}  // namespace
}  // namespace metaprep
