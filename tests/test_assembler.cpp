// Tests for the MiniHit assembler substrate.
#include "assembler/minihit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "assembler/dbg.hpp"
#include "assembler/kmer_count.hpp"
#include "assembler/spectrum.hpp"
#include "assembler/stats.hpp"
#include "kmer/codec.hpp"
#include "sim/genome.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace metaprep::assembler {
namespace {

/// Tile a genome with overlapping error-free reads (every position covered).
std::vector<std::string> perfect_reads(const std::string& genome, std::size_t read_len,
                                       std::size_t stride) {
  std::vector<std::string> reads;
  for (std::size_t pos = 0; pos + read_len <= genome.size(); pos += stride) {
    reads.push_back(genome.substr(pos, read_len));
  }
  reads.push_back(genome.substr(genome.size() - read_len));
  return reads;
}

TEST(KmerCountTable, CountsMatchManualEnumeration) {
  KmerCountTable t(3);
  // 3-mers of ACGTA: ACG (rc CGT -> canonical ACG), CGT (rc ACG -> ACG),
  // GTA (rc TAC; "GTA" < "TAC" -> canonical GTA).
  t.add_read("ACGTA");
  EXPECT_EQ(t.total(), 3u);
  EXPECT_EQ(t.count(kmer::encode64("ACG")), 2u);
  EXPECT_EQ(t.count(kmer::encode64("GTA")), 1u);
  EXPECT_EQ(t.count(kmer::encode64("TAC")), 0u);
  EXPECT_EQ(t.count(kmer::encode64("AAA")), 0u);
}

TEST(KmerCountTable, RejectsWideK) {
  EXPECT_THROW(KmerCountTable(33), std::invalid_argument);
  EXPECT_THROW(KmerCountTable(0), std::invalid_argument);
}

TEST(KmerCountTable, SolidKmersSortedAndFiltered) {
  KmerCountTable t(3);
  t.add_read("AAAAA");  // AAA x3 (canonical AAA)
  t.add_read("CCGGT");  // CCG, CGG, GGT each once-ish in canonical space
  const auto solid2 = t.solid_kmers(3);
  EXPECT_EQ(solid2, std::vector<std::uint64_t>{kmer::encode64("AAA")});
  const auto all = t.solid_kmers(1);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(ContigStats, KnownValues) {
  const std::vector<std::string> contigs{std::string(100, 'A'), std::string(300, 'C'),
                                         std::string(200, 'G')};
  const auto s = contig_stats(contigs);
  EXPECT_EQ(s.num_contigs, 3u);
  EXPECT_EQ(s.total_bp, 600u);
  EXPECT_EQ(s.max_bp, 300u);
  // Sorted desc: 300 (acc 300 >= 300) -> N50 = 300.
  EXPECT_EQ(s.n50_bp, 300u);
}

TEST(ContigStats, N50HalfwayCase) {
  const std::vector<std::string> contigs{std::string(50, 'A'), std::string(40, 'C'),
                                         std::string(30, 'G'), std::string(20, 'T'),
                                         std::string(10, 'A')};
  // total 150; desc 50 (50), 40 (90 >= 75) -> N50 = 40.
  EXPECT_EQ(contig_stats(contigs).n50_bp, 40u);
}

TEST(ContigStats, EmptyInput) {
  const auto s = contig_stats({});
  EXPECT_EQ(s.num_contigs, 0u);
  EXPECT_EQ(s.total_bp, 0u);
  EXPECT_EQ(s.n50_bp, 0u);
}

TEST(ContigStats, CombinedMatchesConcatenation) {
  const std::vector<std::string> a{std::string(100, 'A')};
  const std::vector<std::string> b{std::string(60, 'C'), std::string(40, 'G')};
  std::vector<std::string> both = a;
  both.insert(both.end(), b.begin(), b.end());
  const auto combined = combined_stats(a, b);
  const auto direct = contig_stats(both);
  EXPECT_EQ(combined.num_contigs, direct.num_contigs);
  EXPECT_EQ(combined.total_bp, direct.total_bp);
  EXPECT_EQ(combined.n50_bp, direct.n50_bp);
}

TEST(MiniHit, ReassemblesASingleGenomeFromPerfectReads) {
  const auto genome = sim::random_genome(5000, 77);
  const auto reads = perfect_reads(genome, 100, 25);  // 4x coverage, dense overlap
  AssemblyOptions opt;
  opt.k = 21;
  opt.min_kmer_count = 1;
  const auto result = assemble_reads(reads, opt);
  ASSERT_FALSE(result.contigs.empty());
  // A random 5 kb genome with k=21 has essentially no repeats: MiniHit
  // should recover nearly the whole genome in one contig.
  EXPECT_GT(result.stats.max_bp, 4500u);
  EXPECT_NEAR(static_cast<double>(result.stats.total_bp), 5000.0, 300.0);
  // The biggest contig is a substring of the genome or its reverse
  // complement.
  std::string largest;
  for (const auto& c : result.contigs) {
    if (c.size() > largest.size()) largest = c;
  }
  const bool forward = genome.find(largest) != std::string::npos;
  const bool reverse = genome.find(kmer::revcomp_string(largest)) != std::string::npos;
  EXPECT_TRUE(forward || reverse);
}

TEST(MiniHit, MinCountFilterRemovesErrorKmers) {
  const auto genome = sim::random_genome(3000, 33);
  auto reads = perfect_reads(genome, 100, 10);  // 10x coverage
  // Inject one read with heavy errors.
  util::Xoshiro256 rng(5);
  std::string bad = genome.substr(100, 100);
  for (std::size_t i = 0; i < bad.size(); i += 7) {
    bad[i] = kmer::base_char(static_cast<std::uint8_t>(rng.next_below(4)));
  }
  reads.push_back(bad);

  AssemblyOptions no_filter;
  no_filter.k = 21;
  no_filter.min_kmer_count = 1;
  AssemblyOptions with_filter = no_filter;
  with_filter.min_kmer_count = 2;

  const auto unfiltered = assemble_reads(reads, no_filter);
  const auto filtered = assemble_reads(reads, with_filter);
  // The error k-mers are unique; the filter removes them from the graph,
  // and the main contig stays essentially intact (within a couple of k-mer
  // lengths at the damaged region's boundary).
  EXPECT_LT(filtered.solid_kmers, unfiltered.solid_kmers);
  EXPECT_GE(filtered.stats.max_bp + 2 * static_cast<std::uint64_t>(with_filter.k),
            unfiltered.stats.max_bp);
  // Error k-mers inflate the unfiltered contig count with junk fragments.
  EXPECT_LE(filtered.stats.num_contigs, unfiltered.stats.num_contigs);
}

TEST(MiniHit, TwoDistinctGenomesYieldTwoBigContigs) {
  const auto g1 = sim::random_genome(3000, 101);
  const auto g2 = sim::random_genome(3000, 202);
  auto reads = perfect_reads(g1, 100, 20);
  const auto reads2 = perfect_reads(g2, 100, 20);
  reads.insert(reads.end(), reads2.begin(), reads2.end());
  AssemblyOptions opt;
  opt.k = 21;
  opt.min_kmer_count = 1;
  const auto result = assemble_reads(reads, opt);
  std::vector<std::uint64_t> lengths;
  for (const auto& c : result.contigs) lengths.push_back(c.size());
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  ASSERT_GE(lengths.size(), 2u);
  EXPECT_GT(lengths[0], 2500u);
  EXPECT_GT(lengths[1], 2500u);
}

TEST(MiniHit, AssembleFastqMatchesInMemory) {
  test::TempDir dir;
  const auto genome = sim::random_genome(2000, 55);
  const auto reads = perfect_reads(genome, 80, 20);
  test::write_fastq(dir.file("r.fastq"), reads);
  AssemblyOptions opt;
  opt.k = 17;
  opt.min_kmer_count = 1;
  const auto from_file = assemble_fastq({dir.file("r.fastq")}, opt);
  const auto from_memory = assemble_reads(reads, opt);
  EXPECT_EQ(from_file.contigs, from_memory.contigs);
  EXPECT_EQ(from_file.reads_in, from_memory.reads_in);
}

TEST(MiniHit, ContigsNeverShorterThanMinLength) {
  const auto genome = sim::random_genome(2000, 66);
  const auto reads = perfect_reads(genome, 60, 30);
  AssemblyOptions opt;
  opt.k = 15;
  opt.min_kmer_count = 1;
  opt.min_contig_len = 120;
  const auto result = assemble_reads(reads, opt);
  for (const auto& c : result.contigs) EXPECT_GE(c.size(), 120u);
}

TEST(MiniHit, DeterministicOutput) {
  const auto genome = sim::random_genome(2500, 88);
  const auto reads = perfect_reads(genome, 90, 15);
  AssemblyOptions opt;
  opt.k = 19;
  const auto a = assemble_reads(reads, opt);
  const auto b = assemble_reads(reads, opt);
  EXPECT_EQ(a.contigs, b.contigs);
}

TEST(MiniHit, MultiKListRunsAllRounds) {
  const auto genome = sim::random_genome(3000, 99);
  const auto reads = perfect_reads(genome, 100, 20);
  AssemblyOptions single;
  single.k = 31;
  single.min_kmer_count = 1;
  AssemblyOptions multi = single;
  multi.k_list = {21, 27, 31};
  const auto s = assemble_reads(reads, single);
  const auto m = assemble_reads(reads, multi);
  // Multi-k must still recover (at least) the single-k result on clean data.
  EXPECT_GE(m.stats.max_bp, s.stats.max_bp * 9 / 10);
  EXPECT_GT(m.stats.total_bp, 0u);
}

TEST(MiniHit, MultiKRescuesLowCoverageRegions) {
  // Sparse tiling: adjacent reads overlap by 20 bp, so k=31 windows break
  // between reads but k=21 windows survive.  Multi-k starting at 21 carries
  // the assembled sequence into the k=31 round.
  const auto genome = sim::random_genome(2000, 111);
  std::vector<std::string> reads;
  for (std::size_t pos = 0; pos + 50 <= genome.size(); pos += 25) {
    reads.push_back(genome.substr(pos, 50));  // 25 bp overlap
  }
  AssemblyOptions big_k;
  big_k.k = 31;
  big_k.min_kmer_count = 1;
  big_k.min_contig_len = 60;
  AssemblyOptions multi = big_k;
  multi.k_list = {21, 31};
  const auto single = assemble_reads(reads, big_k);
  const auto multi_result = assemble_reads(reads, multi);
  EXPECT_GT(multi_result.stats.max_bp, single.stats.max_bp);
}

TEST(MiniHit, WeightedReadsSurviveSolidFilter) {
  KmerCountTable t(5);
  // All six 5-mer windows of AAAAACCCCC are distinct even after
  // canonicalization (each is its own canonical form).
  t.add_read_weighted("AAAAACCCCC", 3);
  ASSERT_EQ(t.map().size(), 10u - 5 + 1);
  for (const auto& [km, count] : t.map()) {
    (void)km;
    EXPECT_EQ(count, 3u);
  }
  EXPECT_EQ(t.total(), 3u * (10 - 5 + 1));
}

TEST(Spectrum, CountsEveryDistinctKmerOnce) {
  KmerCountTable t(5);
  t.add_read("AAAAACCCCC");  // 6 distinct 5-mers, once each
  t.add_read("AAAAACCCCC");  // now twice each
  t.add_read("AAAAAA");      // AAAAA twice more -> 4
  const auto spectrum = assembler::frequency_spectrum(t);
  std::uint64_t total = 0;
  for (const auto& [f, n] : spectrum) total += n;
  EXPECT_EQ(total, t.distinct());
  EXPECT_EQ(spectrum.at(2), 5u);  // five 5-mers seen twice
  EXPECT_EQ(spectrum.at(4), 1u);  // AAAAA seen four times
}

TEST(Spectrum, SuggestsValleyAndPeakOnBimodalData) {
  // Synthetic bimodal spectrum: error spike at 1-2, coverage peak at 20.
  assembler::Spectrum spectrum;
  spectrum[1] = 10'000;
  spectrum[2] = 2'000;
  spectrum[3] = 300;
  spectrum[4] = 120;
  spectrum[5] = 150;
  for (std::uint32_t f = 6; f <= 40; ++f) {
    const double d = static_cast<double>(f) - 20.0;
    spectrum[f] = static_cast<std::uint64_t>(3000.0 * std::exp(-d * d / 40.0)) + 50;
  }
  const auto s = assembler::suggest_filter(spectrum, 3.0);
  ASSERT_TRUE(s.confident);
  EXPECT_EQ(s.min_freq, 4u);   // local minimum before the peak
  EXPECT_EQ(s.peak_freq, 20u);
  EXPECT_EQ(s.max_freq, 60u);  // 3x peak
}

TEST(Spectrum, MonotoneSpectrumNotConfident) {
  assembler::Spectrum spectrum;
  for (std::uint32_t f = 1; f <= 30; ++f) spectrum[f] = 1000 / f;
  const auto s = assembler::suggest_filter(spectrum);
  EXPECT_FALSE(s.confident);
  EXPECT_FALSE(assembler::suggest_filter({}).confident);
}

TEST(Spectrum, RealisticCoverageDataFindsPeakNearDepth) {
  // 30x coverage of a genome: peak should land near 30 * (l-k+1)/l ~ 26.
  const auto genome = sim::random_genome(3000, 811);
  util::Xoshiro256 rng(812);
  KmerCountTable t(15);
  const int reads = 3000 * 30 / 100;
  for (int i = 0; i < reads; ++i) {
    const std::uint64_t pos = rng.next_below(genome.size() - 100);
    t.add_read(genome.substr(pos, 100));
  }
  const auto s = assembler::suggest_filter(assembler::frequency_spectrum(t));
  ASSERT_TRUE(s.confident);
  EXPECT_GT(s.peak_freq, 15u);
  EXPECT_LT(s.peak_freq, 45u);
}

TEST(WideK, CountTableMatchesNarrowForSmallK) {
  // k <= 32 must count identically through both representations.
  const auto genome = sim::random_genome(1000, 501);
  const auto reads = perfect_reads(genome, 80, 40);
  KmerCountTable narrow(27);
  WideKmerCountTable wide(27);
  for (const auto& r : reads) {
    narrow.add_read(r);
    wide.add_read(r);
  }
  EXPECT_EQ(narrow.total(), wide.total());
  EXPECT_EQ(narrow.distinct(), wide.distinct());
  for (const auto& [km, c] : narrow.map()) {
    EXPECT_EQ(wide.count({0, km}), c);
  }
}

TEST(WideK, RejectsOutOfRangeK) {
  EXPECT_THROW(KmerCountTable(33), std::invalid_argument);
  EXPECT_THROW(WideKmerCountTable(64), std::invalid_argument);
  EXPECT_NO_THROW(WideKmerCountTable(63));
}

TEST(WideK, ReassemblesGenomeAtK45) {
  const auto genome = sim::random_genome(4000, 601);
  const auto reads = perfect_reads(genome, 120, 30);
  AssemblyOptions opt;
  opt.k = 45;
  opt.min_kmer_count = 1;
  const auto result = assemble_reads(reads, opt);
  ASSERT_FALSE(result.contigs.empty());
  EXPECT_GT(result.stats.max_bp, 3600u);
  std::string largest;
  for (const auto& c : result.contigs) {
    if (c.size() > largest.size()) largest = c;
  }
  EXPECT_TRUE(genome.find(largest) != std::string::npos ||
              genome.find(kmer::revcomp_string(largest)) != std::string::npos);
}

TEST(WideK, MixedKListCrossesThe32Boundary) {
  // {21, 45}: the whole list runs through the 128-bit representation; small
  // k rounds must still work there.
  const auto genome = sim::random_genome(3000, 602);
  const auto reads = perfect_reads(genome, 100, 25);
  AssemblyOptions opt;
  opt.k_list = {21, 45};
  opt.min_kmer_count = 1;
  const auto result = assemble_reads(reads, opt);
  EXPECT_GT(result.stats.max_bp, 2500u);
}

TEST(WideK, SameContigsAsNarrowAtK31) {
  const auto genome = sim::random_genome(2500, 603);
  const auto reads = perfect_reads(genome, 90, 30);
  AssemblyOptions narrow;
  narrow.k = 31;
  narrow.min_kmer_count = 1;
  AssemblyOptions wide = narrow;
  // A k=33 round forces the whole list through the 128-bit representation;
  // ending at k=31 makes the final graph comparable to the narrow run.
  wide.k_list = {33, 31};
  const auto n = assemble_reads(reads, narrow);
  const auto w = assemble_reads(reads, wide);
  // Both end with a k=31 graph over the same sequence content (the k=33
  // round on clean data assembles the same genome, which feeds round 2),
  // so the dominant contig must agree.
  EXPECT_NEAR(static_cast<double>(w.stats.max_bp), static_cast<double>(n.stats.max_bp),
              static_cast<double>(n.stats.max_bp) * 0.05);
}

TEST(WideK, TipClippingWorksAtWideK) {
  const auto genome = sim::random_genome(2000, 604);
  auto reads = perfect_reads(genome, 120, 25);
  std::string bad = genome.substr(500, 120);
  bad[119] = bad[119] == 'A' ? 'C' : 'A';
  reads.push_back(bad);
  AssemblyOptions opt;
  opt.k = 41;
  opt.min_kmer_count = 1;
  opt.tip_clip_bases = 2 * 41;
  const auto clipped = assemble_reads(reads, opt);
  EXPECT_GT(clipped.stats.max_bp, 1800u);
}

TEST(TipRemoval, ClipsErrorBranchAndRestoresContig) {
  // Clean genome reads plus one read whose last base is wrong: the error
  // creates a short dead-end branch (a tip) at a junction.  Tip clipping
  // must remove it and let the main path extend straight through.
  const auto genome = sim::random_genome(1500, 313);
  auto reads = perfect_reads(genome, 100, 20);
  std::string bad = genome.substr(700, 100);
  bad[99] = bad[99] == 'A' ? 'C' : 'A';
  reads.push_back(bad);

  AssemblyOptions no_clip;
  no_clip.k = 21;
  no_clip.min_kmer_count = 1;
  AssemblyOptions clip = no_clip;
  clip.tip_clip_bases = 2 * 21;

  const auto raw = assemble_reads(reads, no_clip);
  const auto clipped = assemble_reads(reads, clip);
  EXPECT_LT(clipped.solid_kmers, raw.solid_kmers);  // tip vertices removed
  EXPECT_GE(clipped.stats.max_bp, raw.stats.max_bp);
  EXPECT_LE(clipped.stats.num_contigs, raw.stats.num_contigs);
  // With the single error clipped, the full genome should assemble into one
  // contig again.
  EXPECT_GT(clipped.stats.max_bp, 1400u);
}

TEST(TipRemoval, DoesNotTouchCleanGraphs) {
  const auto genome = sim::random_genome(2000, 99);
  const auto reads = perfect_reads(genome, 90, 30);
  KmerCountTable counts(21);
  for (const auto& r : reads) counts.add_read(r);
  DeBruijnGraph graph(counts, 1);
  const auto before = graph.num_live_vertices();
  EXPECT_EQ(graph.remove_tips(2 * 21), 0u);
  EXPECT_EQ(graph.num_live_vertices(), before);
}

TEST(TipRemoval, LeavesIsolatedShortPathsAlone) {
  // An isolated short path (both ends free) is a tiny contig, not a tip.
  KmerCountTable counts(15);
  counts.add_read(sim::random_genome(40, 5));
  DeBruijnGraph graph(counts, 1);
  EXPECT_EQ(graph.remove_tips(100), 0u);
  EXPECT_FALSE(graph.extract_contigs(20).empty());
}

TEST(BubblePopping, RemovesLowCoverageSnpArm) {
  // Major allele at 8x, minor (SNP in mid-read) at 2x: a classic bubble.
  const auto genome = sim::random_genome(1200, 777);
  std::string variant = genome;
  variant[600] = variant[600] == 'A' ? 'G' : 'A';

  std::vector<std::string> reads;
  for (int copy = 0; copy < 8; ++copy) {
    for (std::size_t pos = 0; pos + 100 <= genome.size(); pos += 50) {
      reads.push_back(genome.substr(pos, 100));
    }
  }
  for (int copy = 0; copy < 2; ++copy) {
    reads.push_back(variant.substr(550, 100));  // covers the SNP only
  }

  AssemblyOptions no_pop;
  no_pop.k = 21;
  no_pop.min_kmer_count = 1;
  AssemblyOptions pop = no_pop;
  pop.bubble_pop_bases = 2 * 21 + 10;

  const auto raw = assemble_reads(reads, no_pop);
  const auto popped = assemble_reads(reads, pop);
  // Without popping the bubble breaks the contig at the branch; with
  // popping the full genome assembles through the major allele.
  EXPECT_GT(popped.stats.max_bp, raw.stats.max_bp);
  EXPECT_GT(popped.stats.max_bp, 1100u);
  EXPECT_LT(popped.solid_kmers, raw.solid_kmers);
  // The kept path carries the major allele.
  std::string largest;
  for (const auto& c : popped.contigs) {
    if (c.size() > largest.size()) largest = c;
  }
  const std::string major_window = genome.substr(590, 21);
  const bool has_major = largest.find(major_window) != std::string::npos ||
                         kmer::revcomp_string(largest).find(major_window) != std::string::npos;
  EXPECT_TRUE(has_major);
}

TEST(BubblePopping, CleanGraphUntouched) {
  const auto genome = sim::random_genome(1500, 778);
  const auto reads = perfect_reads(genome, 90, 30);
  KmerCountTable counts(21);
  for (const auto& r : reads) counts.add_read(r);
  DeBruijnGraph graph(counts, 1);
  const auto before = graph.num_live_vertices();
  EXPECT_EQ(graph.pop_bubbles(60), 0u);
  EXPECT_EQ(graph.num_live_vertices(), before);
}

TEST(BubblePopping, CoverageAccessorReflectsCounts) {
  KmerCountTable counts(5);
  counts.add_read("AAAAACCCCC");
  counts.add_read("AAAAACCCCC");
  DeBruijnGraph graph(counts, 1);
  EXPECT_EQ(graph.coverage(kmer::encode64("AAAAA")), 2u);
  EXPECT_EQ(graph.coverage(kmer::encode64("GGGGG")), 0u);  // absent
}

TEST(DeBruijnGraph, BackwardExtensionsMirrorForward) {
  KmerCountTable counts(5);
  counts.add_read("AACCGGTTACGGA");
  DeBruijnGraph graph(counts, 1);
  // For every live vertex, forward extensions of the revcomp equal the
  // backward extensions of the forward orientation by definition.
  for (const auto& [km, c] : counts.map()) {
    (void)c;
    EXPECT_EQ(graph.backward_extensions(km),
              graph.forward_extensions(kmer::revcomp64(km, 5)));
  }
}

TEST(DeBruijnGraph, ForwardExtensionsDetected) {
  KmerCountTable t(3);
  t.add_read("ACGTA");
  DeBruijnGraph g(t, 1);
  // From ACG, the extension ACG->CGT exists (CGT canonical = ACG? CGT's rc
  // is ACG so canonical(CGT)=ACG which IS in the graph).
  const unsigned mask = g.forward_extensions(kmer::encode64("ACG"));
  EXPECT_NE(mask, 0u);
}

}  // namespace
}  // namespace metaprep::assembler
