// Service-layer tests: re-entrant PipelineSessions (disjoint per-session
// observability, explicit idempotent trace flush, env-override precedence),
// cooperative cancellation with a drained BufferPool, and the metaprepd
// job queue / wire protocol.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "core/index_create.hpp"
#include "core/indices.hpp"
#include "core/pipeline.hpp"
#include "serve/proto.hpp"
#include "serve/queue.hpp"
#include "serve/session.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"
#include "util/buffer_pool.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/socket.hpp"

namespace metaprep::serve {
namespace {

using test::TempDir;

/// Small simulated dataset + index, shared by the pipeline-running tests.
struct Fixture {
  TempDir dir;
  sim::SimulatedDataset dataset;
  core::DatasetIndex index;

  explicit Fixture(std::uint64_t pairs = 250, std::uint64_t seed = 7) {
    sim::DatasetConfig cfg;
    cfg.name = "serve";
    cfg.genomes.num_species = 3;
    cfg.genomes.min_genome_len = 2500;
    cfg.genomes.max_genome_len = 5000;
    cfg.num_pairs = pairs;
    cfg.reads.seed = seed;
    dataset = sim::simulate_dataset(cfg, dir.file("serve"));
    core::IndexCreateOptions opt;
    opt.k = 27;
    opt.m = 5;
    opt.target_chunks = 8;
    index = core::create_index("serve", dataset.files, true, opt);
  }

  [[nodiscard]] std::string save_index() const {
    const std::string path = dir.file("idx.bin");
    core::save_index(index, path);
    return path;
  }

  [[nodiscard]] core::MetaprepConfig config() const {
    core::MetaprepConfig cfg;
    cfg.k = index.k;
    cfg.write_output = false;
    return cfg;
  }
};

std::vector<std::uint32_t> oracle(const Fixture& fx) {
  return core::reference_components(fx.index, core::KmerFreqFilter{}, io::ParseMode::kStrict);
}

// ---- Satellite: explicit, idempotent per-session trace flush. ----

TEST(TraceFlush, ExplicitFlushIsIdempotentUntilNewEvents) {
  TempDir dir;
  obs::TraceSession session;
  session.enable();
  session.set_flush_path(dir.file("t.json"));
  {
    obs::TraceSession* prev = obs::TraceSession::exchange_current(&session);
    { const obs::TraceSpan span("unit-span"); }
    obs::TraceSession::exchange_current(prev);
  }
  EXPECT_TRUE(session.flush());           // first flush writes
  EXPECT_FALSE(session.flush());          // nothing new -> no rewrite
  const auto doc = util::parse_json_file(dir.file("t.json"));
  bool found = false;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.string_or("name", "") == "unit-span") found = true;
  }
  EXPECT_TRUE(found);
  {
    obs::TraceSession* prev = obs::TraceSession::exchange_current(&session);
    { const obs::TraceSpan span("second-span"); }
    obs::TraceSession::exchange_current(prev);
  }
  EXPECT_TRUE(session.flush());  // new events re-arm the flush
}

TEST(TraceFlush, TwoSequentialSessionsEachProduceCompleteTraces) {
  Fixture fx;
  TempDir out;
  // Two in-process runs, back to back, each in its own session writing its
  // own trace file — the regression for the old atexit-only flush, where
  // the second run's trace clobbered or never materialized.
  const auto ref = test::normalize_partition(oracle(fx));
  for (int i = 0; i < 2; ++i) {
    PipelineSession session;
    core::MetaprepConfig cfg = fx.config();
    cfg.num_ranks = 2;
    cfg.threads_per_rank = 2;
    cfg.num_passes = 2;
    cfg.trace_out = out.file("run" + std::to_string(i) + ".trace.json");
    cfg.metrics_out = out.file("run" + std::to_string(i) + ".metrics.jsonl");
    const auto result = session.run(fx.index, cfg);
    EXPECT_EQ(test::normalize_partition(result.labels), ref);
  }
  for (int i = 0; i < 2; ++i) {
    const auto doc =
        util::parse_json_file(out.file("run" + std::to_string(i) + ".trace.json"));
    EXPECT_GT(doc.at("traceEvents").as_array().size(), 4u)
        << "trace " << i << " incomplete";
    const auto metrics =
        util::parse_jsonl_file(out.file("run" + std::to_string(i) + ".metrics.jsonl"));
    EXPECT_FALSE(metrics.empty());
  }
}

// ---- Satellite: env-var caching fix — per-thread overrides win. ----

TEST(EnvPrecedence, CheckThreadOverrideBeatsProcessDefault) {
  const bool process_default = check::enabled();
  const int prev = check::exchange_thread_override(1);
  EXPECT_TRUE(check::enabled());
  check::exchange_thread_override(0);
  EXPECT_FALSE(check::enabled());
  check::exchange_thread_override(-1);
  EXPECT_EQ(check::enabled(), process_default);  // inherit restored
  check::exchange_thread_override(prev);
}

TEST(EnvPrecedence, LogThreadOverrideBeatsProcessLevel) {
  const int prev = util::exchange_thread_log_level(
      static_cast<int>(util::LogLevel::kError));
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  util::exchange_thread_log_level(static_cast<int>(util::LogLevel::kDebug));
  EXPECT_EQ(util::log_level(), util::LogLevel::kDebug);
  util::exchange_thread_log_level(-1);
  EXPECT_EQ(util::thread_log_level_override(), -1);
  util::exchange_thread_log_level(prev);
}

TEST(EnvPrecedence, OverridesAreThreadLocal) {
  const int prev = check::exchange_thread_override(1);
  std::atomic<bool> other_thread_sees_inherit{false};
  std::thread t([&] {
    other_thread_sees_inherit = check::thread_override() == -1;
  });
  t.join();
  EXPECT_TRUE(other_thread_sees_inherit);
  check::exchange_thread_override(prev);
}

// ---- Tentpole: concurrent sessions with disjoint observability. ----

TEST(ConcurrentSessions, OracleIdenticalPartitionsAndDisjointObs) {
  Fixture fx_a(250, 11);
  Fixture fx_b(200, 23);
  TempDir out;
  const auto ref_a = test::normalize_partition(oracle(fx_a));
  const auto ref_b = test::normalize_partition(oracle(fx_b));

  PipelineSession session_a;
  PipelineSession session_b;
  core::PipelineResult result_a;
  core::PipelineResult result_b;
  std::exception_ptr err_a;
  std::exception_ptr err_b;

  // Different presets on purpose: one barrier, one overlap (the overlap
  // scheduler leases from the shared global BufferPool underneath both).
  std::thread ta([&] {
    try {
      core::MetaprepConfig cfg = fx_a.config();
      cfg.num_ranks = 2;
      cfg.threads_per_rank = 2;
      cfg.num_passes = 2;
      cfg.pipeline_mode = core::PipelineMode::kBarrier;
      cfg.trace_out = out.file("a.trace.json");
      cfg.metrics_out = out.file("a.metrics.jsonl");
      result_a = session_a.run(fx_a.index, cfg);
    } catch (...) {
      err_a = std::current_exception();
    }
  });
  std::thread tb([&] {
    try {
      core::MetaprepConfig cfg = fx_b.config();
      cfg.num_ranks = 2;
      cfg.threads_per_rank = 2;
      cfg.num_passes = 2;
      cfg.pipeline_mode = core::PipelineMode::kOverlap;
      cfg.trace_out = out.file("b.trace.json");
      cfg.metrics_out = out.file("b.metrics.jsonl");
      result_b = session_b.run(fx_b.index, cfg);
    } catch (...) {
      err_b = std::current_exception();
    }
  });
  ta.join();
  tb.join();
  if (err_a) std::rethrow_exception(err_a);
  if (err_b) std::rethrow_exception(err_b);

  EXPECT_EQ(test::normalize_partition(result_a.labels), ref_a);
  EXPECT_EQ(test::normalize_partition(result_b.labels), ref_b);

  // Disjoint per-session state: each session recorded its own run only.
  EXPECT_GT(session_a.metrics().counter("pipeline.tuples_total").value(), 0u);
  EXPECT_GT(session_b.metrics().counter("pipeline.tuples_total").value(), 0u);
  const auto trace_a = util::parse_json_file(out.file("a.trace.json"));
  const auto trace_b = util::parse_json_file(out.file("b.trace.json"));
  EXPECT_GT(trace_a.at("traceEvents").as_array().size(), 4u);
  EXPECT_GT(trace_b.at("traceEvents").as_array().size(), 4u);
  EXPECT_FALSE(util::parse_jsonl_file(out.file("a.metrics.jsonl")).empty());
  EXPECT_FALSE(util::parse_jsonl_file(out.file("b.metrics.jsonl")).empty());
}

// ---- Satellite: cancellation returns every BufferPool lease. ----

TEST(Cancel, PreCancelledRunUnwindsTyped) {
  Fixture fx;
  PipelineSession session;
  session.cancel();
  core::MetaprepConfig cfg = fx.config();
  cfg.num_passes = 2;
  try {
    session.run(fx.index, cfg);
    FAIL() << "pre-cancelled run completed";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kCancelled);
  }
  EXPECT_FALSE(session.running());
  // The session is reusable after re-arming.
  session.reset_cancel();
  const auto result = session.run(fx.index, cfg);
  EXPECT_EQ(test::normalize_partition(result.labels),
            test::normalize_partition(oracle(fx)));
}

TEST(Cancel, MidPassOverlapRunReturnsAllLeases) {
  Fixture fx(400, 31);
  util::BufferPool pool;  // private pool: lease accounting starts at zero
  // Checked mode tracks every lease and poison-scans on reuse; the thread
  // override propagates to the rank/worker threads via SessionContext.
  const int prev_check = check::exchange_thread_override(1);
  ASSERT_EQ(pool.outstanding_leases(), 0u);

  bool observed_cancel = false;
  for (int attempt = 0; attempt < 12 && !observed_cancel; ++attempt) {
    PipelineSession session;
    core::MetaprepConfig cfg = fx.config();
    cfg.num_ranks = 2;
    cfg.threads_per_rank = 2;
    cfg.num_passes = 4;
    cfg.pipeline_mode = core::PipelineMode::kOverlap;
    cfg.buffer_pool = &pool;
    // Fire the token from a racing thread; a later attempt fires later so
    // the cancel lands in different pipeline phases across attempts.
    std::thread killer([&session, attempt] {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * (attempt + 1)));
      session.cancel();
    });
    try {
      session.run(fx.index, cfg);
    } catch (const util::Error& e) {
      ASSERT_EQ(e.category(), util::ErrorCategory::kCancelled) << e.what();
      observed_cancel = true;
    }
    killer.join();
    // The hard invariant: cancelled or not, every lease came back.
    EXPECT_EQ(pool.outstanding_leases(), 0u) << "attempt " << attempt;
  }
  EXPECT_TRUE(observed_cancel) << "no attempt observed a mid-run cancel";

  // Poison-scan proof: a full checked run on the same pool reuses the
  // cancelled run's buffers and the scan finds no tampering.
  PipelineSession session;
  core::MetaprepConfig cfg = fx.config();
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  cfg.pipeline_mode = core::PipelineMode::kOverlap;
  cfg.buffer_pool = &pool;
  const auto result = session.run(fx.index, cfg);
  EXPECT_EQ(pool.outstanding_leases(), 0u);
  EXPECT_EQ(test::normalize_partition(result.labels),
            test::normalize_partition(oracle(fx)));
  check::exchange_thread_override(prev_check);
}

// ---- Job queue. ----

TEST(JobQueue, SubmitRunsToCompletionWithPerJobArtifacts) {
  Fixture fx;
  TempDir jobs;
  JobQueueOptions opt;
  opt.job_dir = jobs.str();
  JobQueue queue(opt);
  JobSpec spec;
  spec.index_path = fx.save_index();
  spec.config = fx.config();
  spec.config.num_ranks = 2;
  spec.config.threads_per_rank = 2;
  const std::uint64_t id = queue.submit(spec);
  ASSERT_TRUE(queue.wait(id, 60.0));
  const JobInfo info = queue.status(id);
  ASSERT_EQ(info.state, JobState::kDone) << info.error;
  EXPECT_TRUE(info.has_result);
  EXPECT_GT(info.num_components, 0u);
  EXPECT_GT(info.predicted_bytes, 0u);
  EXPECT_TRUE(std::filesystem::exists(info.trace_out));
  EXPECT_TRUE(std::filesystem::exists(info.metrics_out));
  EXPECT_NE(info.trace_out.find("job-1"), std::string::npos);
}

TEST(JobQueue, PriorityBeatsFifoAndCancelUnlinksQueuedJobs) {
  Fixture fx;
  TempDir jobs;
  JobQueueOptions opt;
  opt.job_dir = jobs.str();
  JobQueue queue(opt);
  queue.pause();
  JobSpec spec;
  spec.index_path = fx.save_index();
  spec.config = fx.config();
  const std::uint64_t low = queue.submit(spec);
  spec.priority = 5;
  const std::uint64_t high = queue.submit(spec);
  spec.priority = 0;
  const std::uint64_t doomed = queue.submit(spec);
  EXPECT_TRUE(queue.cancel(doomed));
  EXPECT_EQ(queue.status(doomed).state, JobState::kCancelled);
  EXPECT_FALSE(queue.cancel(doomed));  // already terminal
  queue.resume();
  ASSERT_TRUE(queue.wait(low, 60.0));
  ASSERT_TRUE(queue.wait(high, 60.0));
  EXPECT_EQ(queue.status(low).state, JobState::kDone);
  EXPECT_EQ(queue.status(high).state, JobState::kDone);
  EXPECT_EQ(queue.list().size(), 3u);
}

TEST(JobQueue, AdmissionRejectsWhenPredictionExceedsBudget) {
  Fixture fx;
  TempDir jobs;
  JobQueueOptions opt;
  opt.job_dir = jobs.str();
  opt.mem_budget_bytes = 1;  // nothing fits
  JobQueue queue(opt);
  JobSpec spec;
  spec.index_path = fx.save_index();
  spec.config = fx.config();
  EXPECT_THROW(queue.submit(spec), util::Error);
}

TEST(JobQueue, ThreadBudgetClampsAndRejects) {
  Fixture fx;
  TempDir jobs;
  JobQueueOptions opt;
  opt.job_dir = jobs.str();
  opt.max_threads = 2;
  JobQueue queue(opt);
  JobSpec spec;
  spec.index_path = fx.save_index();
  spec.config = fx.config();
  spec.config.num_ranks = 4;  // ranks alone exceed the allowance
  EXPECT_THROW(queue.submit(spec), util::Error);
  spec.config.num_ranks = 2;
  spec.config.threads_per_rank = 8;  // clamped to 1 so P*T == 2
  const std::uint64_t id = queue.submit(spec);
  ASSERT_TRUE(queue.wait(id, 60.0));
  EXPECT_EQ(queue.status(id).state, JobState::kDone);
}

TEST(JobQueue, CancelRunningJobLeavesQueueServing) {
  Fixture fx(400, 41);
  TempDir jobs;
  JobQueueOptions opt;
  opt.job_dir = jobs.str();
  JobQueue queue(opt);
  JobSpec spec;
  spec.index_path = fx.save_index();
  spec.config = fx.config();
  spec.config.num_ranks = 2;
  spec.config.threads_per_rank = 2;
  spec.config.num_passes = 4;
  spec.config.pipeline_mode = core::PipelineMode::kOverlap;
  const std::uint64_t victim = queue.submit(spec);
  // Let the run start, then cancel it mid-flight (the exact phase the token
  // lands in varies; either a cancelled unwind or a photo-finish completion
  // is acceptable — the queue must keep serving afterwards either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  queue.cancel(victim);
  ASSERT_TRUE(queue.wait(victim, 60.0));
  const JobState vs = queue.status(victim).state;
  EXPECT_TRUE(vs == JobState::kCancelled || vs == JobState::kDone) << to_string(vs);

  spec.config.num_passes = 1;
  spec.config.pipeline_mode = core::PipelineMode::kBarrier;
  const std::uint64_t next = queue.submit(spec);
  ASSERT_TRUE(queue.wait(next, 60.0));
  EXPECT_EQ(queue.status(next).state, JobState::kDone) << queue.status(next).error;
}

// Regression hammer pinned by the thread-safety-annotation audit: pause(),
// resume(), cancel(), status(), list(), and paused() all touch the guarded
// queue state from client threads while the worker dispatches.  The
// annotations prove the lock discipline at compile time under clang; this
// test drives every entry point concurrently so the TSan tier-1 leg can
// prove it dynamically.  Jobs may dispatch during the transient resumes;
// the invariant is that no toggle storm loses or double-runs one — every
// job still reaches kDone exactly once.
TEST(JobQueue, PauseResumeHammerDispatchesEveryJobExactlyOnce) {
  Fixture fx;
  TempDir jobs;
  JobQueueOptions opt;
  opt.job_dir = jobs.str();
  JobQueue queue(opt);
  queue.pause();
  JobSpec spec;
  spec.index_path = fx.save_index();
  spec.config = fx.config();
  std::vector<std::uint64_t> ids;
  ids.reserve(4);
  for (int i = 0; i < 4; ++i) ids.push_back(queue.submit(spec));

  std::atomic<bool> done{false};
  std::thread toggler([&] {
    for (int i = 0; i < 400; ++i) {
      queue.pause();
      queue.resume();
    }
    // Leave the queue paused so the observer below can still see a stable
    // paused() == true at least once before the final resume.
    queue.pause();
  });
  std::thread observer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)queue.paused();
      (void)queue.list();
      for (const std::uint64_t id : ids) (void)queue.status(id);
    }
  });
  toggler.join();
  queue.resume();
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(queue.wait(id, 120.0)) << "job " << id << " never finished";
    EXPECT_EQ(queue.status(id).state, JobState::kDone) << queue.status(id).error;
  }
  done = true;
  observer.join();
  EXPECT_FALSE(queue.paused());
  EXPECT_EQ(queue.list().size(), ids.size());
}

// ---- Wire protocol + daemon control plane. ----

TEST(Proto, EscapesAndRoundTrips) {
  JsonLineWriter w;
  w.field("ok", true);
  w.field("text", std::string("a\"b\\c\nd"));
  w.field("n", static_cast<std::uint64_t>(42));
  const auto doc = util::parse_json(w.finish());
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("text").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(doc.at("n").as_uint(), 42u);
}

TEST(Proto, ParseSubmitValidatesFields) {
  EXPECT_THROW(parse_submit(R"({"cmd":"submit"})"), util::Error);
  EXPECT_THROW(parse_submit(R"({"cmd":"submit","index":"i","pipeline_mode":"bogus"})"),
               util::Error);
  const JobSpec spec = parse_submit(
      R"({"cmd":"submit","index":"i.bin","ranks":3,"threads":2,"passes":4,)"
      R"("priority":7,"write_output":false,"pipeline_mode":"overlap"})");
  EXPECT_EQ(spec.index_path, "i.bin");
  EXPECT_EQ(spec.config.num_ranks, 3);
  EXPECT_EQ(spec.config.threads_per_rank, 2);
  EXPECT_EQ(spec.config.num_passes, 4);
  EXPECT_EQ(spec.priority, 7);
  EXPECT_FALSE(spec.config.write_output);
  EXPECT_EQ(spec.config.pipeline_mode, core::PipelineMode::kOverlap);
}

TEST(Daemon, HandleRequestCoversProtocolErrors) {
  TempDir dir;
  DaemonOptions opt;
  opt.socket_path = dir.file("d.sock");
  opt.job_dir = dir.str();
  Daemon daemon(opt);
  EXPECT_EQ(util::parse_json(daemon.handle_request(R"({"cmd":"ping"})"))
                .at("ok").as_bool(), true);
  EXPECT_FALSE(util::parse_json(daemon.handle_request("not json")).at("ok").as_bool());
  EXPECT_FALSE(util::parse_json(daemon.handle_request(R"({"cmd":"warp"})"))
                   .at("ok").as_bool());
  EXPECT_FALSE(util::parse_json(daemon.handle_request(R"({"nocmd":1})"))
                   .at("ok").as_bool());
  EXPECT_FALSE(util::parse_json(daemon.handle_request(R"({"cmd":"status","job":99})"))
                   .at("ok").as_bool());
  EXPECT_FALSE(util::parse_json(daemon.handle_request(R"({"cmd":"status"})"))
                   .at("ok").as_bool());
}

TEST(Daemon, ServesOverSocketAndUnlinksOnShutdown) {
  TempDir dir;
  DaemonOptions opt;
  opt.socket_path = dir.file("d.sock");
  opt.job_dir = dir.str();
  Daemon daemon(opt);
  std::thread server([&] { daemon.serve(); });
  // Wait for the socket to come up, then ping and shut down.
  std::string response;
  for (int i = 0; i < 200; ++i) {
    try {
      util::SocketConn conn = util::connect_unix(opt.socket_path);
      conn.send_line(R"({"cmd":"ping"})");
      ASSERT_TRUE(conn.recv_line(response));
      break;
    } catch (const util::Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(util::parse_json(response).at("ok").as_bool());
  {
    util::SocketConn conn = util::connect_unix(opt.socket_path);
    conn.send_line(R"({"cmd":"shutdown"})");
    ASSERT_TRUE(conn.recv_line(response));
  }
  server.join();
  EXPECT_FALSE(std::filesystem::exists(opt.socket_path)) << "socket file leaked";
}

TEST(Socket, ListenerHealsStaleFilesButRefusesLiveDaemons) {
  TempDir dir;
  const std::string path = dir.file("s.sock");
  {
    // A dead process's leftover: bind, then destroy without unlink by
    // simulating with a plain stale socket (destructor unlinks, so create
    // again and verify rebinding over a *regular file* heals too).
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  util::UnixListener healed(path);  // probe-connect fails -> unlink + rebind
  EXPECT_THROW(util::UnixListener{path}, util::Error);  // live listener wins
}

}  // namespace
}  // namespace metaprep::serve
