// Tests for minimizers and super-k-mer decomposition (KMC-baseline substrate).
#include "kmer/minimizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "kmer/codec.hpp"
#include "kmer/scanner.hpp"
#include "util/rng.hpp"

namespace metaprep::kmer {
namespace {

std::string random_dna(int len, util::Xoshiro256& rng, double n_rate = 0.0) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (auto& c : s) {
    c = rng.next_bool(n_rate) ? 'N' : base_char(static_cast<std::uint8_t>(rng.next_below(4)));
  }
  return s;
}

TEST(Minimizer, WindowMinimizerBruteForceAgreement) {
  util::Xoshiro256 rng(21);
  const int k = 15;
  const int m = 5;
  for (int trial = 0; trial < 20; ++trial) {
    const std::string seq = random_dna(60, rng);
    for (std::size_t pos = 0; pos + k <= seq.size(); ++pos) {
      std::uint64_t mz = 0;
      ASSERT_TRUE(window_minimizer(seq, pos, k, m, mz));
      // Brute force: min canonical m-mer in the window.
      std::uint64_t best = ~0ULL;
      for (std::size_t j = pos; j + m <= pos + k; ++j) {
        best = std::min(best, canonical64(encode64(seq.substr(j, m)), m));
      }
      EXPECT_EQ(mz, best);
    }
  }
}

TEST(Minimizer, WindowWithNFails) {
  std::uint64_t mz = 0;
  EXPECT_FALSE(window_minimizer("ACGTNACGTACGT", 2, 7, 3, mz));
  EXPECT_TRUE(window_minimizer("ACGTNACGTACGT", 5, 7, 3, mz));
}

class SuperKmerTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SuperKmerTest, CoversExactlyTheValidKmers) {
  const auto [k, m] = GetParam();
  util::Xoshiro256 rng(2000 + static_cast<std::uint64_t>(k * 100 + m));
  for (int trial = 0; trial < 20; ++trial) {
    const double n_rate = trial % 4 == 0 ? 0.03 : 0.0;
    const std::string seq = random_dna(40 + static_cast<int>(rng.next_below(120)), rng, n_rate);
    const auto sks = super_kmers(seq, k, m);

    // Union of super-k-mer runs == set of valid k-mer start positions,
    // without overlap.
    std::vector<bool> covered(seq.size(), false);
    for (const auto& sk : sks) {
      EXPECT_GE(sk.kmer_count, 1u);
      for (std::uint32_t i = 0; i < sk.kmer_count; ++i) {
        ASSERT_LT(sk.start + i, covered.size());
        EXPECT_FALSE(covered[sk.start + i]) << "overlapping super k-mers";
        covered[sk.start + i] = true;
      }
    }
    for (std::size_t pos = 0; pos + static_cast<std::size_t>(k) <= seq.size(); ++pos) {
      const bool valid =
          seq.substr(pos, static_cast<std::size_t>(k)).find_first_not_of("ACGT") ==
          std::string::npos;
      EXPECT_EQ(covered[pos], valid) << "pos " << pos << " seq " << seq;
    }
  }
}

TEST_P(SuperKmerTest, RunsShareTheirMinimizer) {
  const auto [k, m] = GetParam();
  util::Xoshiro256 rng(3000 + static_cast<std::uint64_t>(k * 100 + m));
  for (int trial = 0; trial < 10; ++trial) {
    const std::string seq = random_dna(100, rng);
    for (const auto& sk : super_kmers(seq, k, m)) {
      for (std::uint32_t i = 0; i < sk.kmer_count; ++i) {
        std::uint64_t mz = 0;
        ASSERT_TRUE(window_minimizer(seq, sk.start + i, k, m, mz));
        EXPECT_EQ(mz, sk.minimizer);
      }
    }
  }
}

TEST_P(SuperKmerTest, ConsecutiveRunsHaveDistinctMinimizers) {
  const auto [k, m] = GetParam();
  util::Xoshiro256 rng(4000 + static_cast<std::uint64_t>(k * 100 + m));
  const std::string seq = random_dna(300, rng);
  const auto sks = super_kmers(seq, k, m);
  for (std::size_t i = 1; i < sks.size(); ++i) {
    if (sks[i - 1].start + sks[i - 1].kmer_count == sks[i].start) {
      EXPECT_NE(sks[i - 1].minimizer, sks[i].minimizer);
    }
  }
}

TEST_P(SuperKmerTest, CompressionBeatsPerKmerStorage) {
  const auto [k, m] = GetParam();
  util::Xoshiro256 rng(5000 + static_cast<std::uint64_t>(k));
  const std::string seq = random_dna(500, rng);
  const auto sks = super_kmers(seq, k, m);
  std::uint64_t stored_bases = 0;
  std::uint64_t kmers = 0;
  for (const auto& sk : sks) {
    stored_bases += sk.kmer_count + static_cast<std::uint32_t>(k) - 1;
    kmers += sk.kmer_count;
  }
  EXPECT_EQ(kmers, seq.size() - static_cast<std::size_t>(k) + 1);
  // Super k-mers must compress vs storing every k-mer separately.
  EXPECT_LT(stored_bases, kmers * static_cast<std::uint64_t>(k));
}

INSTANTIATE_TEST_SUITE_P(KMPairs, SuperKmerTest,
                         ::testing::Values(std::pair{15, 5}, std::pair{21, 7},
                                           std::pair{27, 7}, std::pair{27, 10},
                                           std::pair{9, 3}));

TEST(SuperKmer, TooShortSequence) {
  EXPECT_TRUE(super_kmers("ACGT", 10, 3).empty());
}

}  // namespace
}  // namespace metaprep::kmer
