// Tests for the observability subsystem (src/obs): metrics registry
// exactness and JSONL export, Chrome-trace export structure, the
// disabled-path contract, and the end-to-end pipeline wiring.
//
// The exported formats are validated with a minimal recursive-descent JSON
// parser defined below — the repo deliberately has no JSON dependency, and
// round-tripping through a real parser is the only honest way to assert
// "this file loads in chrome://tracing".
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/index_create.hpp"
#include "core/pipeline.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/read_sim.hpp"
#include "test_support.hpp"
#include "util/buffer_pool.hpp"
#include "util/thread_team.hpp"

namespace metaprep::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: objects, arrays, strings (with escapes), numbers,
// true/false/null.  Throws std::runtime_error on malformed input.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    auto it = fields.find(key);
    if (it == fields.end()) throw std::runtime_error("json: missing key " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return fields.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view src) : src_(src) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != src_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t' ||
                                  src_[pos_] == '\n' || src_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end");
    return src_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", [] { JsonValue v; v.kind = JsonValue::Kind::kBool; v.boolean = true; return v; }());
      case 'f': return keyword("false", [] { JsonValue v; v.kind = JsonValue::Kind::kBool; return v; }());
      case 'n': return keyword("null", JsonValue{});
      default: return number_value();
    }
  }

  JsonValue keyword(const char* word, JsonValue v) {
    const std::size_t len = std::string_view(word).size();
    if (src_.substr(pos_, len) != word) fail("bad keyword");
    pos_ += len;
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.fields[key.text] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    for (;;) {
      if (pos_ >= src_.size()) fail("unterminated string");
      char c = src_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      if (pos_ >= src_.size()) fail("bad escape");
      char e = src_[pos_++];
      switch (e) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case '/': v.text += '/'; break;
        case 'b': v.text += '\b'; break;
        case 'f': v.text += '\f'; break;
        case 'n': v.text += '\n'; break;
        case 'r': v.text += '\r'; break;
        case 't': v.text += '\t'; break;
        case 'u': {
          if (pos_ + 4 > src_.size()) fail("bad \\u escape");
          const std::string hex(src_.substr(pos_, 4));
          pos_ += 4;
          const unsigned long cp = std::stoul(hex, nullptr, 16);
          if (cp > 0x7F) {
            v.text += '?';  // non-ASCII: not produced by our writers
          } else {
            v.text += static_cast<char>(cp);
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue number_value() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '-' ||
            src_[pos_] == '+' || src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(src_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse(); }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// RAII guard: force the metrics registry into a known enabled state and
/// restore the previous state afterwards (the registry is process-global).
class MetricsEnabledGuard {
 public:
  explicit MetricsEnabledGuard(bool on) : prev_(metrics().enabled()) {
    metrics().set_enabled(on);
  }
  ~MetricsEnabledGuard() { metrics().set_enabled(prev_); }

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterExactUnderThreadTeamStress) {
  MetricsEnabledGuard guard(true);
  Counter& c = metrics().counter("test.stress_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  util::ThreadTeam team(kThreads);
  team.run([&](int tid) {
    for (int i = 0; i < kAddsPerThread; ++i) c.add(1);
    // Mixed increments exercise the n>1 path from distinct threads.
    c.add(static_cast<std::uint64_t>(tid));
  });
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kAddsPerThread + (kThreads * (kThreads - 1)) / 2;
  EXPECT_EQ(c.value(), expected);
}

TEST(Metrics, HistogramExactUnderThreadTeamStress) {
  MetricsEnabledGuard guard(true);
  Histogram& h = metrics().histogram("test.stress_histogram");
  h.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  util::ThreadTeam team(kThreads);
  team.run([&](int) {
    for (std::uint64_t v = 0; v < kPerThread; ++v) h.record(v % 16);
  });
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // sum of (v % 16) over 5000 values per thread: 312 full cycles of 0..15
  // (sum 120) plus a remainder cycle 0..7 (sum 28).
  const std::uint64_t per_thread_sum = 312 * 120 + 28;
  EXPECT_EQ(h.sum(), static_cast<std::uint64_t>(kThreads) * per_thread_sum);
}

TEST(Metrics, DisabledRegistryRecordsNothing) {
  MetricsEnabledGuard guard(false);
  Counter& c = metrics().counter("test.disabled_counter");
  Gauge& g = metrics().gauge("test.disabled_gauge");
  Histogram& h = metrics().histogram("test.disabled_histogram");
  c.reset();
  g.reset();
  h.reset();
  c.add(42);
  g.set(3.5);
  g.set_max(7.0);
  h.record(9);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Metrics, HistogramPowerOfTwoBucketing) {
  MetricsEnabledGuard guard(true);
  Histogram& h = metrics().histogram("test.bucket_histogram");
  h.reset();
  // bucket = bit_width(v): 0 -> 0; 1 -> 1; 2,3 -> 2; 4..7 -> 3; 8..15 -> 4.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull, 15ull, 16ull}) h.record(v);
  const auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(buckets[4], 2u);
  EXPECT_EQ(buckets[5], 1u);
  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 8 + 15 + 16);
  // The largest representable value lands in the last bucket.
  h.record(~0ull);
  EXPECT_EQ(h.bucket_counts()[64], 1u);
}

TEST(Metrics, GaugeSetMaxKeepsMaximum) {
  MetricsEnabledGuard guard(true);
  Gauge& g = metrics().gauge("test.max_gauge");
  g.reset();
  g.set_max(5.0);
  g.set_max(2.0);
  EXPECT_EQ(g.value(), 5.0);
  g.set_max(9.0);
  EXPECT_EQ(g.value(), 9.0);
  g.set(1.0);  // plain set overwrites regardless
  EXPECT_EQ(g.value(), 1.0);
}

TEST(Metrics, JsonlSnapshotParsesAndDescribesEveryMetric) {
  MetricsEnabledGuard guard(true);
  metrics().counter("test.jsonl_counter").reset();
  metrics().counter("test.jsonl_counter").add(7);
  metrics().gauge("test.jsonl_gauge").set(2.25);
  metrics().histogram("test.jsonl_histogram").reset();
  metrics().histogram("test.jsonl_histogram").record(5);

  const std::string jsonl = metrics().to_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::map<std::string, JsonValue> by_name;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValue v = parse_json(line);
    ASSERT_EQ(v.kind, JsonValue::Kind::kObject) << line;
    by_name[v.at("name").text] = v;
  }
  ASSERT_TRUE(by_name.count("test.jsonl_counter"));
  EXPECT_EQ(by_name["test.jsonl_counter"].at("type").text, "counter");
  EXPECT_EQ(by_name["test.jsonl_counter"].at("value").number, 7.0);
  ASSERT_TRUE(by_name.count("test.jsonl_gauge"));
  EXPECT_EQ(by_name["test.jsonl_gauge"].at("type").text, "gauge");
  EXPECT_EQ(by_name["test.jsonl_gauge"].at("value").number, 2.25);
  ASSERT_TRUE(by_name.count("test.jsonl_histogram"));
  EXPECT_EQ(by_name["test.jsonl_histogram"].at("type").text, "histogram");
  EXPECT_EQ(by_name["test.jsonl_histogram"].at("count").number, 1.0);
  EXPECT_EQ(by_name["test.jsonl_histogram"].at("sum").number, 5.0);
  // Every registered name appears in the snapshot.
  for (const auto& name : metrics().names()) {
    EXPECT_TRUE(by_name.count(name)) << name;
  }
}

// ---------------------------------------------------------------------------
// Trace session
// ---------------------------------------------------------------------------

/// Walk a parsed Chrome trace: per-(pid,tid) track, "B"/"E" must follow stack
/// discipline with matching names and non-decreasing timestamps.  Returns the
/// multiset of completed span names.
std::multiset<std::string> check_balanced_nested(const JsonValue& trace) {
  const JsonValue& events = trace.at("traceEvents");
  EXPECT_EQ(events.kind, JsonValue::Kind::kArray);
  struct Track {
    std::vector<std::string> stack;
    double last_ts = -1.0;
  };
  std::map<std::pair<int, int>, Track> tracks;
  std::multiset<std::string> names;
  for (const JsonValue& ev : events.items) {
    const std::string& ph = ev.at("ph").text;
    if (ph == "M") continue;
    const auto key = std::pair(static_cast<int>(ev.at("pid").number),
                               static_cast<int>(ev.at("tid").number));
    Track& track = tracks[key];
    const double ts = ev.at("ts").number;
    EXPECT_GE(ts, track.last_ts) << "events not in timestamp order within a track";
    track.last_ts = ts;
    if (ph == "B") {
      track.stack.push_back(ev.at("name").text);
    } else if (ph == "E") {
      if (track.stack.empty()) {
        ADD_FAILURE() << "unbalanced E event for " << ev.at("name").text;
        continue;
      }
      EXPECT_EQ(track.stack.back(), ev.at("name").text) << "E does not match innermost B";
      names.insert(track.stack.back());
      track.stack.pop_back();
    } else {
      // Instants plus the mpsim flow arrows ("s" start / "f" finish) are the
      // only point events the exporter emits.
      EXPECT_TRUE(ph == "i" || ph == "s" || ph == "f") << "unexpected phase " << ph;
    }
  }
  for (const auto& [key, track] : tracks) {
    EXPECT_TRUE(track.stack.empty())
        << "unclosed spans on pid " << key.first << " tid " << key.second;
  }
  return names;
}

TEST(Trace, DisabledSessionRecordsNothing) {
  TraceSession& s = TraceSession::global();
  s.disable();
  s.clear();
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
    s.instant("marker");
  }
  EXPECT_EQ(s.event_count(), 0u);
  // A span started while disabled records nothing even if the session is
  // enabled before it closes (the decision is taken at construction).
  std::unique_ptr<TraceSpan> span = std::make_unique<TraceSpan>("late");
  s.enable();
  span.reset();
  EXPECT_EQ(s.event_count(), 0u);
  s.disable();
}

TEST(Trace, ExportIsBalancedAndNestedAcrossThreads) {
  TraceSession& s = TraceSession::global();
  s.clear();
  s.enable();
  constexpr int kThreads = 4;
  util::ThreadTeam team(kThreads);
  team.run([&](int tid) {
    TraceSession::set_thread_identity(/*pid=*/tid % 2, /*tid=*/tid);
    for (int i = 0; i < 3; ++i) {
      TraceSpan outer("outer");
      {
        TraceSpan inner("inner");
        s.instant("tick");
      }
      TraceSpan sibling("sibling");
    }
  });
  s.disable();
  EXPECT_EQ(s.event_count(), static_cast<std::size_t>(kThreads) * 3 * 4);

  const JsonValue trace = parse_json(s.to_chrome_json());
  EXPECT_EQ(trace.at("displayTimeUnit").text, "ms");
  const auto names = check_balanced_nested(trace);
  EXPECT_EQ(names.count("outer"), static_cast<std::size_t>(kThreads) * 3);
  EXPECT_EQ(names.count("inner"), static_cast<std::size_t>(kThreads) * 3);
  EXPECT_EQ(names.count("sibling"), static_cast<std::size_t>(kThreads) * 3);
  // Both simulated ranks got a process_name metadata record.
  int metadata = 0;
  for (const JsonValue& ev : trace.at("traceEvents").items) {
    if (ev.at("ph").text == "M") {
      ++metadata;
      EXPECT_EQ(ev.at("name").text, "process_name");
    }
  }
  EXPECT_EQ(metadata, 2);
  s.clear();
}

TEST(Trace, ClearDropsEventsAndRecordingResumes) {
  TraceSession& s = TraceSession::global();
  s.clear();
  s.enable();
  { TraceSpan span("before"); }
  EXPECT_EQ(s.event_count(), 1u);
  s.clear();
  EXPECT_EQ(s.event_count(), 0u);
  { TraceSpan span("after"); }
  EXPECT_EQ(s.event_count(), 1u);
  const JsonValue trace = parse_json(s.to_chrome_json());
  const auto names = check_balanced_nested(trace);
  EXPECT_EQ(names.count("after"), 1u);
  EXPECT_EQ(names.count("before"), 0u);
  s.disable();
  s.clear();
}

// ---------------------------------------------------------------------------
// Concurrency regressions pinned by the thread-safety-annotation audit.
// These are hammers: their assertions are weak on purpose — the real oracle
// is the TSan tier-1 leg (data race / lock-order-inversion reports).
// ---------------------------------------------------------------------------

// Regression: TraceSession's epoch used to be a plain field written by
// clear() while now_us() read it lock-free on recording threads.  The epoch
// is now an atomic tick count, so the pair is race-free even when the
// quiescence contract around clear() is stretched.
TEST(Trace, NowUsIsRaceFreeAgainstConcurrentClear) {
  TraceSession session;  // private session: no interference with global state
  std::atomic<bool> done{false};
  std::atomic<int> bogus{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const double us = session.now_us();
        // After any clear() the epoch is in the past, so now_us() stays
        // non-negative (modulo scheduler noise, bounded well above -1s).
        if (us < -1e6 || !std::isfinite(us)) ++bogus;
      }
    });
  }
  for (int i = 0; i < 200; ++i) session.clear();
  done = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(bogus.load(), 0);
}

// Regression: BufferPool used to publish its gauges *while holding* its own
// mutex, taking the metrics/mem registry locks under the pool lock — an
// inversion of the declared order (registries before pool; the pool is a
// leaf).  publish_gauges() now runs after the pool lock drops; exercising
// pool traffic against concurrent registry exports lets the TSan leg prove
// the inversion stays gone.
TEST(BufferPool, GaugePublishDoesNotInvertRegistryLockOrder) {
  MetricsEnabledGuard guard(true);
  MemRegistry::global().set_enabled(true);
  util::BufferPool pool;
  std::atomic<bool> done{false};
  std::thread exporter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)metrics().to_jsonl();
      (void)MemRegistry::global().snapshot();
    }
  });
  std::thread prober([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)pool.bytes_held();
      (void)pool.reuse_hits();
      (void)pool.buffers_held();
    }
  });
  for (int i = 0; i < 500; ++i) {
    auto a = pool.acquire_u64(1024);
    auto b = pool.acquire_u32(2048);
    pool.release(std::move(a));
    pool.release(std::move(b));
  }
  done = true;
  exporter.join();
  prober.join();
  MemRegistry::global().set_enabled(false);
  EXPECT_GT(pool.reuse_hits(), 0u);
  EXPECT_GT(pool.bytes_held(), 0u);
  pool.trim();
  EXPECT_EQ(pool.bytes_held(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: pipeline run with trace_out / metrics_out (the acceptance
// criterion: all eight paper step names, >= 10 distinct metric keys).
// ---------------------------------------------------------------------------

TEST(ObsEndToEnd, PipelineRunExportsStepsAndMetrics) {
  test::TempDir dir;
  sim::DatasetConfig sim_cfg;
  sim_cfg.name = "obs";
  sim_cfg.genomes.num_species = 3;
  sim_cfg.genomes.min_genome_len = 2000;
  sim_cfg.genomes.max_genome_len = 4000;
  sim_cfg.num_pairs = 150;
  sim_cfg.reads.seed = 99;
  const auto dataset = sim::simulate_dataset(sim_cfg, dir.file("obs"));
  core::IndexCreateOptions opt;
  opt.k = 15;
  opt.m = 5;
  opt.target_chunks = 9;
  const auto index = core::create_index("obs", dataset.files, true, opt);

  core::MetaprepConfig cfg;
  cfg.k = 15;
  cfg.num_ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.num_passes = 2;
  cfg.write_output = true;
  cfg.output_dir = dir.file("out");
  cfg.trace_out = dir.file("trace.json");
  cfg.metrics_out = dir.file("metrics.jsonl");
  std::filesystem::create_directories(cfg.output_dir);
  const auto result = core::run_metaprep(index, cfg);
  EXPECT_GT(result.num_reads, 0u);

  // --- Trace: valid JSON, balanced, covers all eight paper step names.
  const JsonValue trace = parse_json(slurp(cfg.trace_out));
  const auto span_names = check_balanced_nested(trace);
  for (const char* step : {"KmerGen-I/O", "KmerGen", "KmerGen-Comm", "LocalSort", "LocalCC",
                           "Merge-Comm", "MergeCC", "CC-I/O"}) {
    EXPECT_GT(span_names.count(step), 0u) << "missing step span: " << step;
  }
  // Both ranks appear as pids.
  std::set<int> pids;
  for (const JsonValue& ev : trace.at("traceEvents").items) {
    if (ev.at("ph").text != "M") pids.insert(static_cast<int>(ev.at("pid").number));
  }
  EXPECT_EQ(pids, (std::set<int>{0, 1}));

  // --- Metrics: valid JSONL with >= 10 distinct keys and sane core values.
  std::istringstream lines(slurp(cfg.metrics_out));
  std::string line;
  std::map<std::string, JsonValue> by_name;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValue v = parse_json(line);
    by_name[v.at("name").text] = v;
  }
  EXPECT_GE(by_name.size(), 10u);
  ASSERT_TRUE(by_name.count("pipeline.tuples_total"));
  EXPECT_EQ(by_name["pipeline.tuples_total"].at("value").number,
            static_cast<double>(result.total_tuples));
  ASSERT_TRUE(by_name.count("pipeline.passes"));
  EXPECT_EQ(by_name["pipeline.passes"].at("value").number, 2.0);
  ASSERT_TRUE(by_name.count("mpsim.messages_total"));
  EXPECT_GT(by_name["mpsim.messages_total"].at("value").number, 0.0);
  ASSERT_TRUE(by_name.count("dsu.find_path_length"));
  EXPECT_GT(by_name["dsu.find_path_length"].at("count").number, 0.0);
  ASSERT_TRUE(by_name.count("io.bytes_read"));
  EXPECT_GT(by_name["io.bytes_read"].at("value").number, 0.0);
  ASSERT_TRUE(by_name.count("mem.rss_peak"));

  // The pipeline restores the disabled default after exporting.
  EXPECT_FALSE(metrics().enabled());
  EXPECT_FALSE(TraceSession::global().enabled());
}

}  // namespace
}  // namespace metaprep::obs
