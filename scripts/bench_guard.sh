#!/usr/bin/env bash
# Performance guard for the single-node bench (Figure 5).
#
# Runs bench_fig5_singlenode BENCH_GUARD_RUNS times (min-of-N wall time per
# configuration, which filters scheduler noise), writes the distilled result
# to BENCH_fig5.json at the repo root, and fails when:
#
#   * any configuration's min wall time regressed more than 10% (plus a
#     small absolute slack for sub-millisecond rows) against the committed
#     BENCH_fig5.json baseline, or
#   * the pipelined scheduler stopped paying for itself: on the passes=2 A/B
#     rows, overlap must report pool_reuse_hits > 0 (machine-independent) and
#     must not be > 5% slower than barrier; the achieved wall margin is
#     always recorded in the baseline as "overlap_margin", and the strict
#     ">= 10% faster" wall gate is opt-in via METAPREP_GATE_OVERLAP_RATIO=1
#     because the ~60 ms A/B walls drift 5-17% with host scheduler state at
#     identical code (see invariant 1 below), or
#   * the packed read store stopped paying for itself: on the XL-mini
#     passes=2 read-store rows, packed must beat text on the *read path* —
#     min-of-all-samples (PackedIngest + KmerGen-I/O + KmerGen), i.e. the
#     steps the read store actually touches.  Gating the read-path sum
#     instead of total wall keeps LocalSort/LocalCC scheduler noise (which
#     dwarfs the parse savings in absolute terms) from flipping the verdict;
#     the bench also times each store three times per process, interleaved,
#     so N runs yield 3N samples per store.  The comparison carries a 2%
#     noise allowance: host-load drift between samples is ~3% here while a
#     real regression (the per-pass text re-parse coming back) costs >8% on
#     this path, so the slack kills false failures without masking true
#     ones — and the structural check below (KmerGen-I/O == 0) is
#     noise-free.  The packed run must additionally report a nonzero
#     PackedIngest inside the measured wall.  The achieved read-path margin
#     is recorded as "packed_margin" in the baseline (wall mins stay
#     recorded per row).
#
#   * (opt-in, METAPREP_GATE_COMM_BYTES=1) the compressed exchange stopped
#     paying for itself: on the XL-mini P=4 comm rows, --comm-compress=both
#     must ship >= 30% fewer alltoallv bytes than none.  The achieved
#     reduction is always recorded in the baseline as "comm_bytes_reduction";
#     the byte counters are deterministic, so this invariant is noise-free.
#
# Regenerate the committed baseline with METAPREP_BENCH_UPDATE=1.
#
# Env knobs:
#   BENCH_GUARD_RUNS    repetitions for min-of-N (default 5; acceptance: 12)
#   BENCH_GUARD_BIN     bench binary (default ./build/bench/bench_fig5_singlenode)
#   METAPREP_BENCH_UPDATE=1  rewrite BENCH_fig5.json instead of comparing
#   METAPREP_GATE_COMM_BYTES=1  harden the >= 30% comm-byte reduction gate
#   METAPREP_GATE_OVERLAP_RATIO=1  harden the >= 10% overlap-vs-barrier gate
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${BENCH_GUARD_RUNS:-5}"
BIN="${BENCH_GUARD_BIN:-./build/bench/bench_fig5_singlenode}"
BASELINE="BENCH_fig5.json"

if [[ ! -x "${BIN}" ]]; then
  echo "bench_guard: building ${BIN}" >&2
  cmake --build build --target bench_fig5_singlenode -j"$(nproc)"
fi

TMP_JSON="$(mktemp /tmp/bench_guard.XXXXXX.json)"
trap 'rm -f "${TMP_JSON}"' EXIT

echo "=== bench_guard: ${RUNS} x ${BIN} ==="
for i in $(seq "${RUNS}"); do
  METAPREP_BENCH_JSON="${TMP_JSON}" "${BIN}" >/dev/null
done

METAPREP_BENCH_UPDATE="${METAPREP_BENCH_UPDATE:-0}" \
python3 - "${TMP_JSON}" "${BASELINE}" <<'PYEOF'
import json, os, sys

tmp_json, baseline_path = sys.argv[1], sys.argv[2]
update = os.environ.get("METAPREP_BENCH_UPDATE") == "1"

# One JSON object per bench emit() per run; key rows by (mode, passes, threads).
# Besides total wall, the merge/output tail phases (MergeCC flatten,
# Merge-Comm label scatter, CC-I/O) are tracked min-of-N and gated too.
PHASES = ("mergecc_s", "merge_comm_s", "ccio_s")
# Read-store axis extras: recorded min-of-N next to the walls, gated by the
# packed invariants below (not by the 10% phase-regression rule).  The
# derived read_path_s (sum of the three per row) is what the packed-vs-text
# comparison gates on.
RS_FIELDS = ("kmergen_io_s", "kmergen_s", "packed_ingest_s")
# Critical-path attribution from the traced A/B repeats is *recorded* next to
# the wall times (so BENCH_fig5.json shows where the time went) but never
# gated: the traced run is separate from the timed one.
CRIT = ("crit_path_s", "crit_wait_s", "crit_compute_s")
# Comm axis extras: the exchange byte counters are deterministic for a fixed
# dataset/config, so min-of-N is just dedup.  The derived reduction is
# recorded in the baseline every run; the >= 30% gate is opt-in via
# METAPREP_GATE_COMM_BYTES=1 (invariant 1c below).
COMM = ("alltoallv_bytes", "alltoallv_bytes_raw", "superkmer_records", "bloom_dropped")
mins = {}
hits = {}
phase_mins = {}
crit_mins = {}
rs_mins = {}
comm_vals = {}
with open(tmp_json) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("bench") != "fig5_singlenode":
            continue
        for row in obj["rows"]:
            key = (row["mode"], int(row["passes"]), int(row["threads"]))
            wall = float(row["wall_s"])
            mins[key] = min(mins.get(key, wall), wall)
            if "pool_reuse_hits" in row:
                hits[key] = max(hits.get(key, 0), int(row["pool_reuse_hits"]))
            for ph in PHASES:
                if ph in row:
                    v = float(row[ph])
                    cur = phase_mins.setdefault(key, {})
                    cur[ph] = min(cur.get(ph, v), v)
            for c in CRIT:
                if c in row:
                    v = float(row[c])
                    cur = crit_mins.setdefault(key, {})
                    cur[c] = min(cur.get(c, v), v)
            for rf in RS_FIELDS:
                if rf in row:
                    v = float(row[rf])
                    cur = rs_mins.setdefault(key, {})
                    cur[rf] = min(cur.get(rf, v), v)
            if all(rf in row for rf in RS_FIELDS):
                rp = sum(float(row[rf]) for rf in RS_FIELDS)
                cur = rs_mins.setdefault(key, {})
                cur["read_path_s"] = min(cur.get("read_path_s", rp), rp)
            for cf in COMM:
                if cf in row:
                    v = int(row[cf])
                    cur = comm_vals.setdefault(key, {})
                    cur[cf] = min(cur.get(cf, v), v)

if not mins:
    sys.exit("bench_guard: no fig5_singlenode rows captured")

result = {
    "bench": "fig5_singlenode",
    "min_of": int(os.environ.get("BENCH_GUARD_RUNS", "5")),
    "rows": [
        {"mode": m, "passes": p, "threads": t, "wall_s": w}
        | ({"pool_reuse_hits": hits[(m, p, t)]} if (m, p, t) in hits else {})
        | {ph: v for ph, v in sorted(phase_mins.get((m, p, t), {}).items())}
        | {c: v for c, v in sorted(crit_mins.get((m, p, t), {}).items())}
        | {rf: v for rf, v in sorted(rs_mins.get((m, p, t), {}).items())}
        | {cf: v for cf, v in sorted(comm_vals.get((m, p, t), {}).items())}
        for (m, p, t), w in sorted(mins.items())
    ],
}

failures = []

# Invariant 1: the overlap scheduler pays for itself on the A/B rows.  The
# noise-free structural check (pool_reuse_hits > 0) and a lenient wall floor
# (overlap must not be > 5% SLOWER than barrier) are unconditional.  The
# strict ">= 10% faster" wall gate is opt-in via METAPREP_GATE_OVERLAP_RATIO=1
# (acceptance runs on a quiet host): the A/B walls are ~60 ms on this
# oversubscribed single core, and the measured margin at *identical code*
# drifts 5-17% with host scheduler state, so a hard 10% line flips on host
# drift, not regressions.  The achieved margin is always recorded in the
# baseline as "overlap_margin" so drift stays visible.
ab = {m: w for (m, p, t), w in mins.items() if p == 2}
if "barrier" in ab and "overlap" in ab:
    result["overlap_margin"] = round(1.0 - ab["overlap"] / ab["barrier"], 4)
    if ab["overlap"] > 1.05 * ab["barrier"]:
        failures.append(
            f"overlap scheduler is >5% slower than barrier at S=2: "
            f"barrier={ab['barrier']:.4f}s overlap={ab['overlap']:.4f}s"
        )
    if os.environ.get("METAPREP_GATE_OVERLAP_RATIO") == "1" and \
            ab["overlap"] > 0.90 * ab["barrier"]:
        failures.append(
            f"overlap no longer >=10% faster than barrier at S=2: "
            f"barrier={ab['barrier']:.4f}s overlap={ab['overlap']:.4f}s"
        )
    overlap_hits = max(
        (h for (m, p, t), h in hits.items() if m == "overlap" and p == 2), default=0
    )
    if overlap_hits <= 0:
        failures.append("overlap run reported pool_reuse_hits == 0")
else:
    failures.append("missing barrier/overlap passes=2 rows in bench output")

# Invariant 1b: the packed read store pays for itself on the XL-mini S=2
# read-store rows, and actually eliminated the per-pass text parse.  The
# comparison is on the read path (PackedIngest + KmerGen-I/O + KmerGen):
# the steps the store touches, where the win is structural — gating total
# wall would let LocalSort scheduler noise (10x the parse cost) decide.
# The bench emits three interleaved samples per store per process and
# same-key rows share one min, so this is a min over 3N samples each way.
# RS_SLACK absorbs host-load drift between batches (~3% observed); a true
# regression (per-pass re-parse back in the wall) costs >8% on this path.
RS_SLACK = 1.02
rs = {m: w for (m, p, t), w in mins.items() if m in ("text", "packed") and p == 2}
if "text" in rs and "packed" in rs:
    packed_key = next(k for k in mins if k[0] == "packed")
    text_key = next(k for k in mins if k[0] == "text")
    rp_text = rs_mins.get(text_key, {}).get("read_path_s")
    rp_packed = rs_mins.get(packed_key, {}).get("read_path_s")
    if rp_text is None or rp_packed is None:
        failures.append("read-store rows lack read-path step fields")
    else:
        if rp_packed >= rp_text * RS_SLACK:
            failures.append(
                f"packed read store no longer beats text on the S=2 read path: "
                f"text={rp_text:.4f}s packed={rp_packed:.4f}s "
                f"(walls: text={rs['text']:.4f}s packed={rs['packed']:.4f}s)"
            )
        result["packed_margin"] = round(1.0 - rp_packed / rp_text, 4)
    if rs_mins.get(packed_key, {}).get("kmergen_io_s", 1.0) != 0.0:
        failures.append("packed run still reports KmerGen-I/O > 0 (text re-parse alive)")
    if rs_mins.get(text_key, {}).get("kmergen_io_s", 0.0) <= 0.0:
        failures.append("text run reports KmerGen-I/O == 0 (axis mislabeled?)")
    if rs_mins.get(packed_key, {}).get("packed_ingest_s", 0.0) <= 0.0:
        failures.append("packed run reports PackedIngest == 0 (arena outside the wall?)")
else:
    failures.append("missing text/packed passes=2 read-store rows in bench output")

# Invariant 1c: exchange compression ships >= 30% fewer alltoallv bytes than
# the uncompressed wire on the XL-mini P=4 comm rows.  The achieved
# reduction is recorded in the baseline ("comm_bytes_reduction") on every
# run; the hard gate is opt-in (METAPREP_GATE_COMM_BYTES=1) while the
# invariant beds in, so a machine can re-baseline before it hardens.
gate_comm = os.environ.get("METAPREP_GATE_COMM_BYTES") == "1"
comm_none = comm_vals.get(("comm_none", 2, 2), {})
comm_both = comm_vals.get(("comm_both", 2, 2), {})
if comm_none.get("alltoallv_bytes") and comm_both.get("alltoallv_bytes") is not None:
    reduction = 1.0 - comm_both["alltoallv_bytes"] / comm_none["alltoallv_bytes"]
    result["comm_bytes_reduction"] = round(reduction, 4)
    print(f"  comm axis: none={comm_none['alltoallv_bytes']}B "
          f"both={comm_both['alltoallv_bytes']}B reduction={reduction:.1%}"
          + ("" if gate_comm else " (recorded, not gated)"))
    if gate_comm:
        if reduction < 0.30:
            failures.append(
                f"comm compression ships only {reduction:.1%} fewer bytes "
                f"(need >= 30%): none={comm_none['alltoallv_bytes']} "
                f"both={comm_both['alltoallv_bytes']}"
            )
        if comm_both.get("bloom_dropped", 0) <= 0:
            failures.append("comm_both run reported bloom_dropped == 0")
        if comm_both.get("superkmer_records", 0) <= 0:
            failures.append("comm_both run reported superkmer_records == 0")
elif gate_comm:
    failures.append("missing comm_none/comm_both passes=2 rows in bench output")

# Invariant 2: no config regressed > 10% (+0.02 s absolute slack for tiny
# rows) against the committed baseline.
if update:
    with open(baseline_path, "w") as f:
        json.dump(result, f, indent=1)
        f.write("\n")
    print(f"bench_guard: baseline {baseline_path} updated")
elif os.path.exists(baseline_path):
    with open(baseline_path) as f:
        base = json.load(f)
    base_rows = {
        (r["mode"], int(r["passes"]), int(r["threads"])): float(r["wall_s"])
        for r in base["rows"]
    }
    base_phases = {
        (r["mode"], int(r["passes"]), int(r["threads"])): {
            ph: float(r[ph]) for ph in PHASES if ph in r
        }
        for r in base["rows"]
    }
    for key, wall in sorted(mins.items()):
        if key not in base_rows:
            continue
        limit = base_rows[key] * 1.10 + 0.02
        if wall > limit:
            failures.append(
                f"regression at mode={key[0]} passes={key[1]} threads={key[2]}: "
                f"{wall:.4f}s > limit {limit:.4f}s (baseline {base_rows[key]:.4f}s)"
            )
        # Phase walls get a larger absolute slack: sub-millisecond phases
        # jitter with the scheduler, so only a real blow-up should trip.
        for ph, base_v in base_phases.get(key, {}).items():
            v = phase_mins.get(key, {}).get(ph)
            if v is None:
                continue
            ph_limit = base_v * 1.10 + 0.02
            if v > ph_limit:
                failures.append(
                    f"phase regression at mode={key[0]} passes={key[1]} "
                    f"threads={key[2]} {ph}: {v:.4f}s > limit {ph_limit:.4f}s "
                    f"(baseline {base_v:.4f}s)"
                )
else:
    failures.append(
        f"no committed baseline {baseline_path}; run METAPREP_BENCH_UPDATE=1 "
        "scripts/bench_guard.sh and commit it"
    )

for key, wall in sorted(mins.items()):
    print(f"  mode={key[0]:8s} passes={key[1]} threads={key[2]:2d}  min wall {wall:.4f}s")

if failures:
    print("bench_guard: FAIL", file=sys.stderr)
    for f_ in failures:
        print("  " + f_, file=sys.stderr)
    sys.exit(1)
print("bench_guard: PASS")
PYEOF
