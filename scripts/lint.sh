#!/usr/bin/env bash
# Repo-idiom lint for first-party sources (src/ + tools/).
#
#   scripts/lint.sh
#
# Thin driver for tools/metaprep-lint: builds the analyzer on demand through
# the normal CMake target (incremental, pure-std, so a cold build is cheap)
# and runs it over the repo.  The analyzer is comment/string/raw-string
# aware and checks eight rules — run `metaprep-lint --list-rules` or see
# DESIGN.md "Static concurrency safety" for the catalogue and the NOLINT
# suppression contract (`// NOLINT(metaprep-<rule>): <why>` on the offending
# line or the line directly above; the justification is mandatory).
#
# Environments with no usable cmake/compiler fall back to the legacy awk
# scan with a notice.  The fallback covers only the four original rules
# (no-adhoc-throw, no-naked-new, pragma-once, no-using-namespace-header)
# and only src/ — a pass there is weaker than the analyzer's.
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${METAPREP_LINT_BUILD_DIR:-build}"
BIN="$BUILD_DIR/tools/metaprep-lint"

build_lint() {
  command -v cmake >/dev/null 2>&1 || return 1
  if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    cmake -B "$BUILD_DIR" -S . >/dev/null 2>&1 || return 1
  fi
  cmake --build "$BUILD_DIR" --target metaprep_lint >/dev/null 2>&1
}

if build_lint && [[ -x "$BIN" ]]; then
  exec "$BIN"
fi

echo "lint: metaprep-lint unavailable (cmake or compiler missing); falling back to the awk scan (4 of 8 rules, src/ only)" >&2

fail=0

report() {  # file:line  rule  message
  echo "lint: $1: [$2] $3" >&2
  fail=1
}

# awk helper: scan a file for a regex on comment-stripped lines, honoring
# same-line or previous-line NOLINT(metaprep-<rule>) suppressions (which are
# inside comments, so they are checked before stripping).
scan() {
  local rule="$1" regex="$2" file="$3" msg="$4"
  awk -v rule="$rule" -v regex="$regex" -v file="$file" -v msg="$msg" '
    {
      raw = $0
      nolint_here = (raw ~ ("NOLINT\\(metaprep-" rule "\\)"))
      line = raw
      sub(/\/\/.*$/, "", line)   # strip line comments
      if (line ~ regex && !nolint_here && !prev_nolint) {
        printf "lint: %s:%d: [metaprep-%s] %s\n", file, NR, rule, msg
        found = 1
      }
      prev_nolint = nolint_here
    }
    END { exit found ? 1 : 0 }
  ' "$file" >&2 || fail=1
}

# --- Rule: no ad-hoc std::runtime_error outside the error taxonomy --------
while IFS= read -r f; do
  case "$f" in
    src/util/error.*) continue ;;  # the taxonomy itself derives from it
  esac
  scan "no-adhoc-throw" "throw[[:space:]]+std::runtime_error" "$f" \
       "use a util::Error factory (io_error/parse_error/comm_error/config_error)"
done < <(find src -name '*.cpp' -o -name '*.hpp' | sort)

# --- Rule: no naked new ---------------------------------------------------
while IFS= read -r f; do
  scan "no-naked-new" "[^_[:alnum:]]new[[:space:]]+[A-Za-z_:][A-Za-z0-9_:<>, ]*[({[]" "$f" \
       "prefer std::make_unique/containers; NOLINT-justify intentional singletons"
done < <(find src -name '*.cpp' -o -name '*.hpp' | sort)

# --- Rule: headers carry #pragma once ------------------------------------
while IFS= read -r f; do
  if ! grep -q '^#pragma once' "$f"; then
    report "$f:1" "metaprep-pragma-once" "header is missing #pragma once"
  fi
done < <(find src -name '*.hpp' | sort)

# --- Rule: no using namespace in headers ---------------------------------
while IFS= read -r f; do
  scan "no-using-namespace-header" "^[[:space:]]*using[[:space:]]+namespace[[:space:]]" "$f" \
       "using-directives in headers leak into every includer"
done < <(find src -name '*.hpp' | sort)

if [[ "$fail" -ne 0 ]]; then
  echo "lint: FAILED (see findings above; suppress only with an inline justification)" >&2
  exit 1
fi
echo "lint: clean (awk fallback, src/: $(find src -name '*.cpp' -o -name '*.hpp' | wc -l) files)"
