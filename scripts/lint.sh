#!/usr/bin/env bash
# Repo-idiom lint for first-party sources (src/), no toolchain required.
#
#   scripts/lint.sh
#
# Rules (suppress a finding by putting `// NOLINT(metaprep-<rule>): <why>`
# on the offending line or the line directly above it — the justification
# is mandatory):
#   metaprep-no-adhoc-throw   `throw std::runtime_error` anywhere except
#                             src/util/error.* — use the util::Error
#                             factories (io_error/parse_error/comm_error/
#                             config_error) so failures stay typed.
#   metaprep-no-naked-new     `new T(...)` outside a smart-pointer factory —
#                             the only blessed uses are intentionally leaked
#                             process-lifetime singletons and private-ctor
#                             registries, each NOLINT-justified inline.
#   metaprep-pragma-once      every header under src/ starts its include
#                             guard with `#pragma once`.
#   metaprep-no-using-namespace-header
#                             no `using namespace` at file scope in headers.
set -uo pipefail

cd "$(dirname "$0")/.."

fail=0

report() {  # file:line  rule  message
  echo "lint: $1: [$2] $3" >&2
  fail=1
}

# awk helper: scan a file for a regex on comment-stripped lines, honoring
# same-line or previous-line NOLINT(metaprep-<rule>) suppressions (which are
# inside comments, so they are checked before stripping).
scan() {
  local rule="$1" regex="$2" file="$3" msg="$4"
  awk -v rule="$rule" -v regex="$regex" -v file="$file" -v msg="$msg" '
    {
      raw = $0
      nolint_here = (raw ~ ("NOLINT\\(metaprep-" rule "\\)"))
      line = raw
      sub(/\/\/.*$/, "", line)   # strip line comments
      if (line ~ regex && !nolint_here && !prev_nolint) {
        printf "lint: %s:%d: [metaprep-%s] %s\n", file, NR, rule, msg
        found = 1
      }
      prev_nolint = nolint_here
    }
    END { exit found ? 1 : 0 }
  ' "$file" >&2 || fail=1
}

# --- Rule: no ad-hoc std::runtime_error outside the error taxonomy --------
while IFS= read -r f; do
  case "$f" in
    src/util/error.*) continue ;;  # the taxonomy itself derives from it
  esac
  scan "no-adhoc-throw" "throw[[:space:]]+std::runtime_error" "$f" \
       "use a util::Error factory (io_error/parse_error/comm_error/config_error)"
done < <(find src -name '*.cpp' -o -name '*.hpp' | sort)

# --- Rule: no naked new ---------------------------------------------------
while IFS= read -r f; do
  scan "no-naked-new" "[^_[:alnum:]]new[[:space:]]+[A-Za-z_:][A-Za-z0-9_:<>, ]*[({[]" "$f" \
       "prefer std::make_unique/containers; NOLINT-justify intentional singletons"
done < <(find src -name '*.cpp' -o -name '*.hpp' | sort)

# --- Rule: headers carry #pragma once ------------------------------------
while IFS= read -r f; do
  if ! grep -q '^#pragma once' "$f"; then
    report "$f:1" "metaprep-pragma-once" "header is missing #pragma once"
  fi
done < <(find src -name '*.hpp' | sort)

# --- Rule: no using namespace in headers ---------------------------------
while IFS= read -r f; do
  scan "no-using-namespace-header" "^[[:space:]]*using[[:space:]]+namespace[[:space:]]" "$f" \
       "using-directives in headers leak into every includer"
done < <(find src -name '*.hpp' | sort)

if [[ "$fail" -ne 0 ]]; then
  echo "lint: FAILED (see findings above; suppress only with an inline justification)" >&2
  exit 1
fi
echo "lint: clean (src/: $(find src -name '*.cpp' -o -name '*.hpp' | wc -l) files)"
