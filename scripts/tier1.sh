#!/usr/bin/env bash
# Tier-1 verification: the gate every change must pass.
#
#   1. Regular build + full ctest suite (RelWithDebInfo, CMakePresets
#      "default" preset).
#   2. ThreadSanitizer build of the concurrency-heavy binaries, running the
#      observability (test_obs), simulated-MPI (test_mpsim), union-find
#      (test_dsu), and service-layer (test_serve: concurrent sessions,
#      cancellation, job queue) suites plus the binned-output and
#      packed-read-store differential legs — the paths that stress
#      cross-thread event buffers, mailboxes, the parallel MergeCC flatten
#      (atomic_ref size counting), and the threads-over-mmap packed KmerGen
#      scan.
#   3. Address+UBSanitizer build running the fault-injection (test_faults),
#      FASTQ parsing (test_fastq), packed-arena (test_packed_store), and
#      exchange-compression (test_superkmer, test_bloom, the comm-compress
#      differential grid) suites — the paths that do raw buffer arithmetic
#      and deliberately corrupt / truncate input, including the super-k-mer
#      wire decode.
#   4. metaprepd daemon smoke: start the job-queue daemon on an AF_UNIX
#      socket, submit a job via `metaprep_cli daemon`, poll it to
#      completion, fetch the partition manifest, cancel a queued job under
#      pause, shut down cleanly — failing on a leaked child process or
#      socket file.
#   5. Correctness tooling: the metaprep-lint analyzer (scripts/lint.sh
#      builds and drives tools/metaprep-lint), clang-tidy static analysis
#      plus the clang -Wthread-safety capability-annotation proof when clang
#      is available (scripts/analyze.sh; both skip with a notice otherwise),
#      and the src/check verification layer live (METAPREP_CHECK=1) over the
#      seeded-violation suite plus a checked differential slice.
#
# Usage: scripts/tier1.sh [-jN]   (default -j$(nproc))
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:--j$(nproc)}"

echo "=== tier 1: metaprep-lint repo-idiom analyzer (scripts/lint.sh) ==="
scripts/lint.sh

echo "=== tier 1: configure + build (default preset) ==="
cmake --preset default
cmake --build --preset default "${JOBS}"

echo "=== tier 1: full test suite ==="
ctest --preset default "${JOBS}"

echo "=== tier 1: clang-tidy + clang -Wthread-safety capability proof (each skips when its tool is absent) ==="
scripts/analyze.sh build

echo "=== tier 1: checked mode (METAPREP_CHECK=1 seeded violations + differential slice) ==="
METAPREP_CHECK=1 ./build/tests/test_check
METAPREP_CHECK=1 ./build/tests/test_differential --gtest_filter='*P2*'

echo "=== tier 1: packed-vs-text differential (read-store grid + lenient consistency) ==="
./build/tests/test_differential --gtest_filter='*Packed*'
./build/tests/test_packed_store

echo "=== tier 1: exchange-compression unit suites (super-k-mer records + counting Bloom) ==="
./build/tests/test_superkmer
./build/tests/test_bloom

echo "=== tier 1: checked comm-compress differential (protocol checker over compressed payloads) ==="
METAPREP_CHECK=1 ./build/tests/test_differential --gtest_filter='CompressGrid/*'

echo "=== tier 1: attribution report leg (traced fig5-style run -> metaprep-report) ==="
REPORT_DIR="$(mktemp -d /tmp/metaprep_tier1_report.XXXXXX)"
trap 'if [ -n "${DPID:-}" ]; then kill "${DPID}" 2>/dev/null || true; fi; rm -rf "${REPORT_DIR}"' EXIT
./build/examples/metaprep_cli sim --out="${REPORT_DIR}/data" --preset=HG --sim-scale=0.2 >/dev/null
./build/examples/metaprep_cli index --out="${REPORT_DIR}/idx.bin" --chunks=32 \
  "${REPORT_DIR}/data/HG_1.fastq" "${REPORT_DIR}/data/HG_2.fastq" >/dev/null
./build/examples/metaprep_cli run --index="${REPORT_DIR}/idx.bin" \
  --ranks=4 --threads=4 --passes=2 --out="${REPORT_DIR}/out" \
  --attr-out="${REPORT_DIR}/attr.json" --trace-out="${REPORT_DIR}/trace.json" \
  --metrics-out="${REPORT_DIR}/metrics.jsonl" \
  --comm-matrix-out="${REPORT_DIR}/comm.json" >/dev/null
# Human-readable path must render; offline trace re-analysis must agree on
# the phase set; the JSON document must satisfy the attribution schema.
./build/tools/metaprep-report --attr="${REPORT_DIR}/attr.json" >/dev/null
./build/tools/metaprep-report --trace="${REPORT_DIR}/trace.json" \
  --metrics="${REPORT_DIR}/metrics.jsonl" >/dev/null
./build/tools/metaprep-report --attr="${REPORT_DIR}/attr.json" --json \
  > "${REPORT_DIR}/report.json"
python3 - "${REPORT_DIR}/report.json" "${REPORT_DIR}/comm.json" <<'PYEOF'
import json, sys

d = json.load(open(sys.argv[1]))
assert d["ranks"] == 4 and d["threads"] == 4 and d["passes"] == 2, d
assert d["wall_s"] > 0 and d["trace_span_s"] > 0

phases = {p["name"]: p for p in d["phases"]}
assert phases, "no phases in attr.json"
for name in ("KmerGen", "KmerGen-Comm", "LocalSort", "LocalCC", "MergeCC"):
    assert name in phases, f"missing phase {name}"
for p in phases.values():
    assert p["imbalance"] >= 1.0 or p["self_s"] == 0, p
    assert len(p["per_rank"]) >= 1

cp = d["critical_path"]
assert cp["steps"], "empty critical path"
assert 0 < cp["length_s"] <= d["wall_s"] * 1.001, cp["length_s"]
assert abs(cp["wait_s"] + cp["compute_s"] - cp["length_s"]) < 1e-6

comm = d["comm"]
assert comm["ranks"] == 4 and len(comm["bytes"]) == 4 and len(comm["msgs"]) == 4
assert comm["skew"] > 0, "no off-diagonal traffic recorded"
side = json.load(open(sys.argv[2]))
assert side["bytes"] == comm["bytes"], "comm-matrix-out disagrees with attr.json"

mem = {m["name"]: m for m in d["memory"]["subsystems"]}
for name in ("tuples", "dsu", "io"):
    assert name in mem and mem[name]["high_water_bytes"] > 0, name
    assert mem[name]["predicted_bytes"] > 0, f"{name} lacks a memory_model prediction"
assert d["memory"]["peak_rss_bytes"] > 0
assert d["memory"]["rss_samples"], "no phase-boundary RSS samples"
print("report leg: schema OK "
      f"({len(phases)} phases, crit path {cp['length_s']:.3f}s of {d['wall_s']:.3f}s)")
PYEOF

echo "=== tier 1: metaprepd daemon smoke (submit/status/fetch/cancel over AF_UNIX) ==="
DSOCK="${REPORT_DIR}/metaprepd.sock"
./build/tools/metaprepd --socket="${DSOCK}" --job-dir="${REPORT_DIR}/jobs" &
DPID=$!
for _ in $(seq 1 100); do
  [ -S "${DSOCK}" ] && break
  sleep 0.05
done
./build/examples/metaprep_cli daemon ping --socket="${DSOCK}" >/dev/null
# Reuse the report leg's index: submit an overlap job and poll to completion.
./build/examples/metaprep_cli daemon submit --socket="${DSOCK}" \
  --index="${REPORT_DIR}/idx.bin" --ranks=2 --threads=2 --passes=2 \
  --pipeline-mode=overlap --out="${REPORT_DIR}/dout" >/dev/null
STATUS_OUT="$(./build/examples/metaprep_cli daemon status --socket="${DSOCK}" --job=1 --wait=120)"
echo "${STATUS_OUT}" | grep -q '"state":"done"' \
  || { echo "daemon smoke: job 1 did not complete: ${STATUS_OUT}"; exit 1; }
./build/examples/metaprep_cli daemon fetch --socket="${DSOCK}" --job=1 \
  | grep -q '"output_files":\[' \
  || { echo "daemon smoke: fetch returned no partition manifest"; exit 1; }
# Per-job observability artifacts, scoped by job id, plus the same
# manifest.tsv sidecar a direct CLI run leaves next to the bins.
test -s "${REPORT_DIR}/jobs/job-1.trace.json"
test -s "${REPORT_DIR}/jobs/job-1.metrics.jsonl"
test -s "${REPORT_DIR}/dout/manifest.tsv"
# Deterministic queued-job cancel: pause dispatch so the worker never starts it.
./build/examples/metaprep_cli daemon pause --socket="${DSOCK}" >/dev/null
./build/examples/metaprep_cli daemon submit --socket="${DSOCK}" \
  --index="${REPORT_DIR}/idx.bin" --no-output >/dev/null
./build/examples/metaprep_cli daemon cancel --socket="${DSOCK}" --job=2 \
  | grep -q '"cancelled":true' || { echo "daemon smoke: cancel failed"; exit 1; }
./build/examples/metaprep_cli daemon resume --socket="${DSOCK}" >/dev/null
./build/examples/metaprep_cli daemon status --socket="${DSOCK}" --job=2 \
  | grep -q '"state":"cancelled"' \
  || { echo "daemon smoke: cancelled job not reported cancelled"; exit 1; }
./build/examples/metaprep_cli daemon shutdown --socket="${DSOCK}" >/dev/null
wait "${DPID}"
if kill -0 "${DPID}" 2>/dev/null; then
  echo "daemon smoke: leaked metaprepd process ${DPID}"; exit 1
fi
DPID=""
if [ -e "${DSOCK}" ]; then
  echo "daemon smoke: leaked socket file ${DSOCK}"; exit 1
fi
echo "daemon smoke: OK (submit/status/fetch/cancel/shutdown, no leaks)"

echo "=== tier 1: ThreadSanitizer build (test_obs + test_mpsim + test_dsu + test_differential + test_serve) ==="
cmake --preset tsan
cmake --build --preset tsan "${JOBS}" --target test_obs test_mpsim test_dsu test_differential test_serve

echo "=== tier 1: TSan test_obs ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_obs
echo "=== tier 1: TSan test_mpsim ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_mpsim
echo "=== tier 1: TSan test_dsu (parallel flatten adopt ctor) ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_dsu
echo "=== tier 1: TSan differential binned-output legs (P2, parallel MergeCC tail) ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_differential \
  --gtest_filter='OutputGrid/*P2*'
echo "=== tier 1: TSan packed read-store legs (threads over one shared mmap arena) ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_differential \
  --gtest_filter='Grid/*T2*Packed*'
echo "=== tier 1: TSan service layer (concurrent sessions + cancel + job queue) ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_serve

echo "=== tier 1: ASan+UBSan build (test_faults + test_fastq + test_packed_store + compress legs) ==="
cmake --preset asan
cmake --build --preset asan "${JOBS}" --target test_faults test_fastq test_packed_store \
  test_superkmer test_bloom test_differential

echo "=== tier 1: ASan test_faults ==="
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_faults
echo "=== tier 1: ASan test_fastq ==="
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_fastq
echo "=== tier 1: ASan test_packed_store (arena corruption + packed scan bounds) ==="
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_packed_store
echo "=== tier 1: ASan exchange-compression (wire encode/decode + Bloom probe bounds) ==="
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_superkmer
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_bloom
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_differential \
  --gtest_filter='CompressGrid/*'

echo "=== tier 1: bench guard (fig5 min-of-N vs BENCH_fig5.json) ==="
scripts/bench_guard.sh

echo "=== tier 1: PASS ==="
