#!/usr/bin/env bash
# Tier-1 verification: the gate every change must pass.
#
#   1. Regular build + full ctest suite (RelWithDebInfo, CMakePresets
#      "default" preset).
#   2. ThreadSanitizer build of the concurrency-heavy binaries, running the
#      observability (test_obs), simulated-MPI (test_mpsim), and union-find
#      (test_dsu) suites plus the binned-output differential legs — the
#      paths that stress cross-thread event buffers, mailboxes, and the
#      parallel MergeCC flatten (atomic_ref size counting).
#   3. Address+UBSanitizer build running the fault-injection (test_faults)
#      and FASTQ parsing (test_fastq) suites — the paths that do raw buffer
#      arithmetic and deliberately corrupt / truncate input.
#   4. Correctness tooling: repo-idiom lint (scripts/lint.sh), clang-tidy
#      static analysis when available (scripts/analyze.sh), and the src/check
#      verification layer live (METAPREP_CHECK=1) over the seeded-violation
#      suite plus a checked differential slice.
#
# Usage: scripts/tier1.sh [-jN]   (default -j$(nproc))
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:--j$(nproc)}"

echo "=== tier 1: repo-idiom lint (scripts/lint.sh) ==="
scripts/lint.sh

echo "=== tier 1: configure + build (default preset) ==="
cmake --preset default
cmake --build --preset default "${JOBS}"

echo "=== tier 1: full test suite ==="
ctest --preset default "${JOBS}"

echo "=== tier 1: clang-tidy static analysis (skips when clang-tidy absent) ==="
scripts/analyze.sh build

echo "=== tier 1: checked mode (METAPREP_CHECK=1 seeded violations + differential slice) ==="
METAPREP_CHECK=1 ./build/tests/test_check
METAPREP_CHECK=1 ./build/tests/test_differential --gtest_filter='*P2*'

echo "=== tier 1: ThreadSanitizer build (test_obs + test_mpsim + test_dsu + test_differential) ==="
cmake --preset tsan
cmake --build --preset tsan "${JOBS}" --target test_obs test_mpsim test_dsu test_differential

echo "=== tier 1: TSan test_obs ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_obs
echo "=== tier 1: TSan test_mpsim ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_mpsim
echo "=== tier 1: TSan test_dsu (parallel flatten adopt ctor) ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_dsu
echo "=== tier 1: TSan differential binned-output legs (P2, parallel MergeCC tail) ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_differential \
  --gtest_filter='OutputGrid/*P2*'

echo "=== tier 1: ASan+UBSan build (test_faults + test_fastq) ==="
cmake --preset asan
cmake --build --preset asan "${JOBS}" --target test_faults test_fastq

echo "=== tier 1: ASan test_faults ==="
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_faults
echo "=== tier 1: ASan test_fastq ==="
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_fastq

echo "=== tier 1: bench guard (fig5 min-of-N vs BENCH_fig5.json) ==="
scripts/bench_guard.sh

echo "=== tier 1: PASS ==="
