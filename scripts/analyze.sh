#!/usr/bin/env bash
# clang-tidy static analysis over the exported compile database.
#
#   scripts/analyze.sh [build-dir] [-- extra clang-tidy args]
#
# Uses the repo .clang-tidy profile (bugprone-*, concurrency-*,
# performance-*, narrowing).  Needs a configured build directory
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on; any `cmake -B build -S .`
# produces build/compile_commands.json).
#
# Environments without clang-tidy (this repo's CI container ships only the
# gcc toolchain) skip with exit 0 so tier1.sh can include this leg
# unconditionally; install clang-tidy to make the leg bite.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [[ "${1:-}" == "--" ]]; then shift; fi

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then TIDY="$candidate"; break; fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "analyze.sh: clang-tidy not found; skipping static analysis (install clang-tidy to enable)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "analyze.sh: $BUILD_DIR/compile_commands.json missing; run: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# First-party sources only: the compile database also covers tests/ and
# bench/, which are gtest/gbenchmark macro soup clang-tidy dislikes.
mapfile -t FILES < <(find src -name '*.cpp' | sort)

echo "analyze.sh: $TIDY over ${#FILES[@]} files (profile: .clang-tidy)"
"$TIDY" -p "$BUILD_DIR" --quiet "$@" "${FILES[@]}"
echo "analyze.sh: clean"
