#!/usr/bin/env bash
# Static analysis over first-party sources: clang-tidy (compile-database
# driven) plus the clang -Wthread-safety capability-annotation proof.
#
#   scripts/analyze.sh [build-dir] [--thread-safety-only] [-- extra clang-tidy args]
#
# Legs:
#   1. clang-tidy with the repo .clang-tidy profile (bugprone-*,
#      concurrency-*, performance-*, narrowing) over src/.  Needs a
#      configured build directory (CMAKE_EXPORT_COMPILE_COMMANDS is always
#      on; any `cmake -B build -S .` produces build/compile_commands.json).
#   2. clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety-analysis
#      over src/ + tools/: turns the util/sync.hpp capability annotations
#      (GUARDED_BY, REQUIRES, SCOPED_CAPABILITY, ...) into a compile-time
#      proof of the lock discipline.  See DESIGN.md "Static concurrency
#      safety" for how to read a failure.
#
# --thread-safety-only skips the (slower) clang-tidy leg for fast local
# iteration on annotations.  Each leg skips with a notice (exit 0) when its
# tool is absent — this repo's CI container ships only the gcc toolchain, so
# tier1.sh includes both legs unconditionally and they bite wherever clang
# is installed.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
THREAD_SAFETY_ONLY=0
PRINT_CONFIG=0
EXTRA_ARGS=()
seen_build_dir=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --thread-safety-only) THREAD_SAFETY_ONLY=1; shift ;;
    --print-config) PRINT_CONFIG=1; shift ;;  # smoke-test hook: dump parse, no analysis
    --) shift; EXTRA_ARGS=("$@"); break ;;
    -*) echo "analyze.sh: unknown option $1" >&2; exit 2 ;;
    *)
      if [[ "$seen_build_dir" -eq 0 ]]; then
        BUILD_DIR="$1"; seen_build_dir=1; shift
      else
        echo "analyze.sh: unexpected positional argument $1" >&2; exit 2
      fi ;;
  esac
done

if [[ "$PRINT_CONFIG" -eq 1 ]]; then
  echo "build_dir=$BUILD_DIR thread_safety_only=$THREAD_SAFETY_ONLY extra=${EXTRA_ARGS[*]:-}"
  exit 0
fi

# --- Leg 2 helper: clang -Wthread-safety capability proof -----------------
run_thread_safety() {
  local clangxx="${CLANGXX:-}"
  if [[ -z "$clangxx" ]]; then
    for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 clang++-15; do
      if command -v "$candidate" >/dev/null 2>&1; then clangxx="$candidate"; break; fi
    done
  fi
  if [[ -z "$clangxx" ]]; then
    echo "analyze.sh: clang++ not found; skipping -Wthread-safety capability analysis (install clang to enable)" >&2
    return 0
  fi
  local files
  mapfile -t files < <(find src tools -name '*.cpp' | sort)
  echo "analyze.sh: $clangxx -fsyntax-only -Wthread-safety over ${#files[@]} files"
  local fail=0 f
  for f in "${files[@]}"; do
    "$clangxx" -std=c++20 -fsyntax-only -I src -I tools \
      -Wthread-safety -Werror=thread-safety-analysis "$f" || fail=1
  done
  if [[ "$fail" -ne 0 ]]; then
    echo "analyze.sh: -Wthread-safety FAILED (fix the lock discipline; do not suppress — see DESIGN.md)" >&2
    return 1
  fi
  echo "analyze.sh: -Wthread-safety clean"
}

if [[ "$THREAD_SAFETY_ONLY" -eq 1 ]]; then
  run_thread_safety
  exit $?
fi

# --- Leg 1: clang-tidy over the compile database --------------------------
TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then TIDY="$candidate"; break; fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "analyze.sh: clang-tidy not found; skipping static analysis (install clang-tidy to enable)" >&2
else
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "analyze.sh: $BUILD_DIR/compile_commands.json missing; run: cmake -B $BUILD_DIR -S ." >&2
    exit 2
  fi
  # First-party sources only: the compile database also covers tests/ and
  # bench/, which are gtest/gbenchmark macro soup clang-tidy dislikes.
  mapfile -t FILES < <(find src -name '*.cpp' | sort)
  echo "analyze.sh: $TIDY over ${#FILES[@]} files (profile: .clang-tidy)"
  "$TIDY" -p "$BUILD_DIR" --quiet ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} "${FILES[@]}"
  echo "analyze.sh: clang-tidy clean"
fi

run_thread_safety
